"""The TCP connection state machine.

This module implements an event-driven TCP endpoint faithful enough to
reproduce the transport phenomena the paper depends on:

* three-way handshake (the paper's first packet cluster in Fig. 4);
* slow-start window ramp-up (whose elimination on the FE-BE leg is the
  whole point of split TCP);
* cumulative ACKs, duplicate-ACK fast retransmit with NewReno-style
  recovery, and RFC 6298 retransmission timeouts with Karn's algorithm;
* persistent connections whose congestion window survives across
  request/response exchanges (no idle-window reset), which is how the
  FE's long-lived back-end connection stays warm;
* immediate or delayed ACKs, and ACK piggybacking on response data.

It does **not** model window scaling negotiation (the advertised window
is a constant from config), selective acknowledgements, or simultaneous
open — none of which affect the measured quantities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.net.address import Endpoint, FlowKey
from repro.obs import runtime as _obs
from repro.net.packet import Packet
from repro.tcp.buffers import Reassembler, SendBuffer
from repro.tcp.config import TcpConfig
from repro.tcp.congestion import (
    CongestionController,
    CubicController,
    FixedWindowController,
    RenoController,
)
from repro.tcp.segment import HEADER_BYTES, Segment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tcp.host import TcpHost


class State(enum.Enum):
    """TCP connection states (simultaneous open/close not modelled)."""

    CLOSED = "CLOSED"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


class ConnectionError_(Exception):
    """Raised on fatal connection failures (handshake/retry exhaustion)."""


@dataclass
class ConnectionStats:
    """Diagnostics counters for one connection."""

    segments_sent: int = 0
    segments_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    retransmissions: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    dup_acks_received: int = 0


class TcpApp:
    """Application callback interface for a TCP connection.

    Subclass (or duck-type) and pass to ``TcpHost.connect`` /
    ``TcpHost.listen``.  All callbacks receive the connection first.
    """

    def on_established(self, conn: "Connection") -> None:
        """Handshake complete; the connection can carry data."""

    def on_data(self, conn: "Connection", data: bytes) -> None:
        """In-order payload bytes arrived."""

    def on_close(self, conn: "Connection") -> None:
        """The peer finished sending (FIN received and delivered)."""

    def on_error(self, conn: "Connection", message: str) -> None:
        """The connection was aborted (retry exhaustion etc.)."""


class Connection:
    """One endpoint of a TCP connection.

    Connections are created through :class:`repro.tcp.host.TcpHost`
    (active open via ``connect`` or passive open via ``listen``), never
    directly.
    """

    def __init__(self, host: "TcpHost", flow: FlowKey, app: TcpApp,
                 config: TcpConfig,
                 controller: Optional[CongestionController] = None,
                 passive: bool = False):
        self.host = host
        self.sim = host.sim
        self.flow = flow
        self.app = app
        self.config = config
        self.state = State.CLOSED
        self.passive = passive
        self.stats = ConnectionStats()
        # Flow-key fields cached as plain attributes: ``self.local`` /
        # ``self.remote`` are property hops, and the transmit path reads
        # these once per segment.
        self._node = host.node
        self._sport = flow.local.port
        self._dport = flow.remote.port
        self._src_host = flow.local.host
        self._dst_host = flow.remote.host

        if controller is not None:
            self.cc: CongestionController = controller
        elif config.fixed_window_bytes is not None:
            self.cc = FixedWindowController(config.fixed_window_bytes)
        elif config.congestion == "cubic":
            self.cc = CubicController(config.mss,
                                      config.initial_cwnd_bytes,
                                      config.initial_ssthresh_bytes,
                                      clock=lambda: self.sim.now)
        else:
            self.cc = RenoController(config.mss, config.initial_cwnd_bytes,
                                     config.initial_ssthresh_bytes)

        # Sequence bookkeeping.  ISNs are deterministic per flow for
        # reproducibility; buffers work in stream offsets.
        self.isn = host.next_isn(flow)
        self.peer_isn: Optional[int] = None
        self.send_buffer = SendBuffer()
        self.reassembler = Reassembler(config.receive_window_bytes)
        self.peer_rwnd = config.receive_window_bytes

        # Handshake / FIN bookkeeping.
        self._syn_acked = False
        self._fin_sent = False
        self._fin_acked = False
        self._peer_fin_offset: Optional[int] = None
        self._peer_fin_delivered = False

        # Loss recovery.  RTO timers are deadline-based: ACK processing
        # moves ``_rto_deadline`` (a float store) instead of cancelling
        # and rescheduling an engine event per ACK; the single sleeping
        # timer re-checks the deadline when it fires (see ``_on_rto``).
        self._dupacks = 0
        self._recover_offset = 0
        self._rto = config.initial_rto
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto_timer = None
        self._rto_deadline: Optional[float] = None
        self._retries = 0
        self._rtt_probe: Optional[tuple] = None  # (end_offset, send_time)

        # ACK generation.
        self._ack_pending = False
        self._delack_timer = None
        self._segments_since_ack = 0

        # RFC 2861 idle detection (controller kind never changes, so the
        # isinstance test runs once here instead of per send attempt).
        self._last_send_time = self.sim.now
        self._idle_reset_enabled = (
            config.slow_start_after_idle
            and isinstance(self.cc, (RenoController, CubicController)))

        self.open_time = self.sim.now
        self.established_time: Optional[float] = None
        self.close_callbacks: list = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        state = self.state
        return state is State.ESTABLISHED or state in (
            State.FIN_WAIT_1, State.FIN_WAIT_2, State.CLOSE_WAIT)

    @property
    def local(self) -> Endpoint:
        return self.flow.local

    @property
    def remote(self) -> Endpoint:
        return self.flow.remote

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT estimate in seconds (None before first sample)."""
        return self._srtt

    def send(self, data: bytes) -> None:
        """Queue application ``data`` for transmission."""
        if self._fin_sent:
            raise ConnectionError_("send after close on %s" % self.flow)
        if self.state in (State.CLOSE_WAIT,) or self.established or \
                self.state in (State.SYN_SENT, State.SYN_RCVD):
            self.send_buffer.enqueue(data)
            if self.established:
                self._try_send()
        else:
            raise ConnectionError_("send on %s connection" % self.state.value)

    def close(self) -> None:
        """Finish sending: a FIN is queued after all buffered data."""
        if self._fin_sent or self.send_buffer.fin_enqueued:
            return
        self.send_buffer.mark_fin()
        if self.established:
            self._try_send()

    def abort(self, reason: str = "aborted") -> None:
        """Tear the connection down immediately (no FIN exchange)."""
        self._cancel_timers()
        if self.state != State.CLOSED:
            self.state = State.CLOSED
            self.host.forget(self)
            self.app.on_error(self, reason)

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------
    def open_active(self) -> None:
        """Send the initial SYN (client side)."""
        if self.state != State.CLOSED:
            raise ConnectionError_("open_active in state %s" % self.state)
        self.state = State.SYN_SENT
        self._transmit(Segment(sport=self.local.port, dport=self.remote.port,
                               seq=self.isn, syn=True))
        self._arm_rto()

    def _open_passive(self, syn: Segment) -> None:
        """Respond to a received SYN (server side)."""
        self.peer_isn = syn.seq
        self.reassembler.next_expected = 0
        self.state = State.SYN_RCVD
        self._transmit(Segment(sport=self.local.port, dport=self.remote.port,
                               seq=self.isn, ack=syn.seq + 1,
                               syn=True, ack_flag=True))
        self._arm_rto()

    # ------------------------------------------------------------------
    # offset helpers: buffers track stream offsets; wire uses absolute seq
    # ------------------------------------------------------------------
    def _send_seq(self, offset: int) -> int:
        """Stream offset -> absolute sequence number (our direction)."""
        return self.isn + 1 + offset

    def _recv_offset(self, seq: int) -> int:
        """Absolute sequence number -> stream offset (peer direction)."""
        assert self.peer_isn is not None
        return seq - (self.peer_isn + 1)

    def _rcv_nxt(self) -> int:
        """Next absolute sequence number expected from the peer.

        Callers must guarantee ``peer_isn`` is set (every call site is
        behind a handshake or ``peer_isn is not None`` guard); this runs
        once per ACK-carrying segment, so it skips re-checking.
        """
        offset = self.reassembler.next_expected
        fin_offset = self._peer_fin_offset
        if fin_offset is not None and offset >= fin_offset:
            offset += 1
        return self.peer_isn + 1 + offset

    # ------------------------------------------------------------------
    # segment reception
    # ------------------------------------------------------------------
    def handle_segment(self, segment: Segment) -> None:
        """Entry point for every segment of this flow delivered to us."""
        stats = self.stats
        stats.segments_received += 1
        stats.bytes_received += len(segment.data)

        if self.state == State.SYN_SENT:
            self._handle_in_syn_sent(segment)
            return
        if self.state == State.CLOSED:
            return
        if segment.syn:
            # Duplicate SYN (our SYN-ACK was lost): re-ack it.
            if self.state == State.SYN_RCVD and not segment.ack_flag:
                self._transmit(Segment(
                    sport=self.local.port, dport=self.remote.port,
                    seq=self.isn, ack=segment.seq + 1,
                    syn=True, ack_flag=True, retransmit=True))
            return

        tried_send = False
        if segment.ack_flag:
            tried_send = self._process_ack(segment)
        if segment.data or segment.fin:
            self._process_payload(segment)
        self._flush_ack_or_data(tried_send=tried_send)

    def _handle_in_syn_sent(self, segment: Segment) -> None:
        if not (segment.syn and segment.ack_flag):
            return
        if segment.ack != self.isn + 1:
            return
        self.peer_isn = segment.seq
        self._syn_acked = True
        self._retries = 0
        self._sample_rtt_for_handshake()
        self._enter_established()
        # The handshake ACK; piggybacked on data when the app already
        # queued some (typical HTTP client behaviour: ACK + GET go
        # back-to-back, which is exactly the paper's t1 cluster).
        self._ack_pending = True
        self._flush_ack_or_data()

    def _enter_established(self) -> None:
        self.state = State.ESTABLISHED
        self.established_time = self.sim.now
        self._cancel_rto()
        self.app.on_established(self)
        self._try_send()

    def _process_ack(self, segment: Segment) -> bool:
        """Handle the ACK field; returns True if it ran its _try_send
        (letting handle_segment skip the redundant one in the flush)."""
        if self.state == State.SYN_RCVD:
            if segment.ack == self.isn + 1:
                self._syn_acked = True
                self._retries = 0
                self._enter_established()
            # fall through: the same segment may carry data (rare here).

        ack_offset = segment.ack - (self.isn + 1)
        fin_offset = (self.send_buffer.stream_length
                      if self.send_buffer.fin_enqueued else None)

        if fin_offset is not None and ack_offset == fin_offset + 1:
            ack_offset = fin_offset  # the +1 acknowledges our FIN
            fin_now_acked = self._fin_sent
        else:
            fin_now_acked = False

        if ack_offset > self.send_buffer.nxt:
            return False  # acks data we never sent; ignore

        newly = 0
        if ack_offset > self.send_buffer.una:
            newly = self.send_buffer.ack_to(ack_offset)
            self._retries = 0
            self._on_bytes_acked(ack_offset, newly)
        elif (ack_offset == self.send_buffer.una
              and self.send_buffer.unacked_bytes > 0
              and not segment.data and not segment.fin):
            self._on_dup_ack()

        if fin_now_acked and not self._fin_acked:
            self._fin_acked = True
            self._retries = 0
            self._advance_close_state_on_fin_ack()

        if newly or fin_now_acked:
            if self._outstanding():
                self._arm_rto(restart=True)
            else:
                self._cancel_rto()
        self._try_send()
        return True

    def _on_bytes_acked(self, ack_offset: int, newly: int) -> None:
        # RTT sampling (Karn: the probe is only set on fresh sends).
        if self._rtt_probe is not None and ack_offset >= self._rtt_probe[0]:
            self._update_rtt(self.sim._now - self._rtt_probe[1])
            self._rtt_probe = None
        if self.cc.in_recovery:
            if ack_offset >= self._recover_offset:
                self.cc.on_recovery_exit()
                self._dupacks = 0
            else:
                # NewReno partial ACK: retransmit the next hole at once.
                self.cc.on_ack(newly, self._flight_size())
                self._retransmit_una()
                return
        else:
            self._dupacks = 0
            self.cc.on_ack(newly, self._flight_size())

    def _on_dup_ack(self) -> None:
        self.stats.dup_acks_received += 1
        self._dupacks += 1
        if self.cc.in_recovery:
            self.cc.on_dup_ack()
            self._try_send()
        elif self._dupacks == self.config.dupack_threshold:
            self.stats.fast_retransmits += 1
            if _obs.enabled:
                _obs.metrics.inc("tcp.fast_retransmits")
            self._recover_offset = self.send_buffer.nxt
            self.cc.on_fast_retransmit(self._flight_size())
            self._retransmit_una()

    def _process_payload(self, segment: Segment) -> None:
        if self.peer_isn is None:
            return
        offset = segment.seq - (self.peer_isn + 1)
        delivered = self.reassembler.offer(offset, segment.data)

        if segment.fin:
            fin_offset = offset + len(segment.data)
            if (self._peer_fin_offset is None
                    or fin_offset < self._peer_fin_offset):
                self._peer_fin_offset = fin_offset

        self._ack_pending = True
        self._segments_since_ack += 1

        if delivered:
            self.app.on_data(self, delivered)
        self._maybe_deliver_fin()

    def _maybe_deliver_fin(self) -> None:
        if (self._peer_fin_offset is not None
                and not self._peer_fin_delivered
                and self.reassembler.next_expected >= self._peer_fin_offset):
            self._peer_fin_delivered = True
            self._advance_close_state_on_peer_fin()
            self.app.on_close(self)

    # ------------------------------------------------------------------
    # close-state transitions
    # ------------------------------------------------------------------
    def _advance_close_state_on_peer_fin(self) -> None:
        if self.state == State.ESTABLISHED:
            self.state = State.CLOSE_WAIT
        elif self.state == State.FIN_WAIT_1:
            # Proper TCP would pass through CLOSING when our FIN is not
            # yet acked; collapsing to TIME_WAIT does not change timing.
            self.state = State.TIME_WAIT
            self._schedule_forget()
        elif self.state == State.FIN_WAIT_2:
            self.state = State.TIME_WAIT
            self._schedule_forget()

    def _advance_close_state_on_fin_ack(self) -> None:
        if self.state == State.FIN_WAIT_1:
            self.state = (State.TIME_WAIT if self._peer_fin_delivered
                          else State.FIN_WAIT_2)
            if self.state == State.TIME_WAIT:
                self._schedule_forget()
        elif self.state == State.LAST_ACK:
            self.state = State.CLOSED
            self._cancel_timers()
            self.host.forget(self)

    def _schedule_forget(self) -> None:
        """Approximate TIME_WAIT: linger 2 RTO then release the flow."""
        self._cancel_timers()
        # TIME_WAIT expiry is unconditional; the handle is never cancelled.
        self.sim.schedule(2 * self._rto,
                          self._finish_time_wait)  # simlint: ignore[EVT003]

    def _finish_time_wait(self) -> None:
        if self.state == State.TIME_WAIT:
            self.state = State.CLOSED
            self.host.forget(self)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _flight_size(self) -> int:
        return self.send_buffer.unacked_bytes

    def _outstanding(self) -> bool:
        if self.send_buffer.unacked_bytes > 0:
            return True
        if self._fin_sent and not self._fin_acked:
            return True
        if self.state in (State.SYN_SENT, State.SYN_RCVD):
            return True
        return False

    def _window_available(self) -> int:
        window = min(self.cc.cwnd, self.peer_rwnd)  # simlint: unit[bytes]
        return max(0, window - self._flight_size())

    def _try_send(self) -> None:
        """Transmit as much new data as the windows allow."""
        sb = self.send_buffer
        # Nothing unsent and no FIN pending: skip the whole window scan.
        # On a one-directional transfer roughly half of all calls land
        # here (the receiving side runs _try_send once per segment), so
        # this early-out is load-bearing for bulk-transfer throughput.
        # The RFC 2861 idle check still runs when enabled: a pure ACK
        # can refresh _last_send_time before the next data send, so the
        # collapse cannot be deferred to the sending call.
        if sb.nxt == sb.stream_length and (
                self._fin_sent or not sb.fin_enqueued):
            if self._idle_reset_enabled and self.established:
                self._maybe_reset_after_idle()
            return
        if not self.established:
            return
        self._maybe_reset_after_idle()
        sent_any = False
        # Window bounds are loop-invariant (cc.on_ack never runs inside
        # the loop), so they are computed once, and flight is tracked
        # from the buffer offsets directly.
        config = self.config
        mss = config.mss
        nagle = config.nagle
        window = self.cc.cwnd  # simlint: unit[bytes]
        if self.peer_rwnd < window:
            window = self.peer_rwnd
        # Also invariant inside the loop: nothing in it enqueues data or
        # receives segments, so stream length and the ACK fields are
        # fixed for the batch.
        length = sb.stream_length
        sport = self._sport
        dport = self._dport
        has_peer = self.peer_isn is not None
        rcv_nxt = self._rcv_nxt() if has_peer else 0
        seq_base = self.isn + 1
        while True:
            available = window - (sb.nxt - sb.una)
            unsent = length - sb.nxt
            if unsent <= 0 or available <= 0:
                break
            size = mss
            if unsent < size:
                size = unsent
            if available < size:
                size = available
            if nagle and size < mss and sb.nxt - sb.una > 0:
                break
            offset = sb.nxt
            data = sb.peek_view(offset, size)
            sb.advance_nxt(len(data))
            fin = (sb.fin_enqueued
                   and length == sb.nxt
                   and not self._fin_sent)
            if fin:
                self._fin_sent = True
                self._note_fin_state()
            segment = Segment(sport=sport, dport=dport,
                              seq=seq_base + offset,
                              ack=rcv_nxt, ack_flag=has_peer,
                              data=data, fin=fin)
            if self._rtt_probe is None:
                self._rtt_probe = (offset + len(data), self.sim._now)
            self._transmit(segment)
            self._ack_pending = False
            self._segments_since_ack = 0
            sent_any = True
        # A bare FIN when everything was already sent.
        if (self.send_buffer.fin_enqueued and not self._fin_sent
                and self.send_buffer.unsent_bytes == 0
                and self._window_available() >= 0):
            self._fin_sent = True
            self._note_fin_state()
            self._transmit(Segment(
                sport=self.local.port, dport=self.remote.port,
                seq=self._send_seq(self.send_buffer.stream_length),
                ack=self._rcv_nxt() if self.peer_isn is not None else 0,
                ack_flag=self.peer_isn is not None, fin=True))
            self._ack_pending = False
            sent_any = True
        if sent_any:
            self._arm_rto()

    def _maybe_reset_after_idle(self) -> None:
        """RFC 2861: collapse cwnd after an idle period (if configured)."""
        if not self._idle_reset_enabled:
            return
        if self.send_buffer.unacked_bytes > 0:
            return  # not idle: data is in flight
        idle = self.sim._now - self._last_send_time
        if idle > max(self._rto, self.config.min_rto):
            self.cc.cwnd = min(self.cc.cwnd, self.config.initial_cwnd_bytes)

    def _note_fin_state(self) -> None:
        if self.state == State.ESTABLISHED:
            self.state = State.FIN_WAIT_1
        elif self.state == State.CLOSE_WAIT:
            self.state = State.LAST_ACK

    def _retransmit_una(self) -> None:
        """Retransmit the first unacknowledged segment."""
        self.stats.retransmissions += 1
        if _obs.enabled:
            _obs.metrics.inc("tcp.retransmissions")
        offset = self.send_buffer.una
        if offset < self.send_buffer.stream_length:
            size = min(self.config.mss,
                       self.send_buffer.nxt - offset) or self.config.mss
            data = self.send_buffer.peek_view(offset, size)
            fin = (self._fin_sent
                   and offset + len(data) >= self.send_buffer.stream_length)
            segment = Segment(sport=self.local.port, dport=self.remote.port,
                              seq=self._send_seq(offset),
                              ack=self._rcv_nxt() if self.peer_isn is not None else 0,
                              ack_flag=self.peer_isn is not None,
                              data=data, fin=fin, retransmit=True)
        elif self._fin_sent and not self._fin_acked:
            segment = Segment(sport=self.local.port, dport=self.remote.port,
                              seq=self._send_seq(self.send_buffer.stream_length),
                              ack=self._rcv_nxt() if self.peer_isn is not None else 0,
                              ack_flag=self.peer_isn is not None,
                              fin=True, retransmit=True)
        else:
            return
        self._rtt_probe = None  # Karn's algorithm
        self._transmit(segment)
        self._arm_rto(restart=True)

    def _flush_ack_or_data(self, tried_send: bool = False) -> None:
        """Send queued data (which piggybacks the ACK) or a pure ACK.

        ``tried_send=True`` means _process_ack already ran _try_send for
        this segment and nothing changed since (app sends trigger their
        own _try_send), so the redundant window scan is skipped.
        """
        if not tried_send:
            self._try_send()
        if not self._ack_pending or self.peer_isn is None:
            return
        if self.config.delayed_ack and self._segments_since_ack < 2 \
                and self._peer_fin_offset is None:
            if self._delack_timer is None:
                self._delack_timer = self.sim.schedule(
                    self.config.delayed_ack_timeout, self._delack_fire)
            return
        self._send_pure_ack()

    def _delack_fire(self) -> None:
        self._delack_timer = None
        if self._ack_pending:
            self._send_pure_ack()

    def _send_pure_ack(self) -> None:
        self._ack_pending = False
        self._segments_since_ack = 0
        if self._delack_timer is not None:
            self.sim.cancel(self._delack_timer)
            self._delack_timer = None
        self._transmit(Segment(sport=self._sport, dport=self._dport,
                               seq=self.isn + 1 + self.send_buffer.nxt,
                               ack=self._rcv_nxt(), ack_flag=True))

    def _transmit(self, segment: Segment) -> None:
        stats = self.stats
        stats.segments_sent += 1
        size = len(segment.data)
        stats.bytes_sent += size
        self._last_send_time = self.sim._now
        packet = Packet(src=self._src_host, dst=self._dst_host,
                        protocol="tcp", size_bytes=HEADER_BYTES + size,
                        payload=segment)
        self._node.send(packet)

    # ------------------------------------------------------------------
    # timers & RTT estimation (RFC 6298)
    # ------------------------------------------------------------------
    def _update_rtt(self, sample: float) -> None:
        if sample < 0:
            return
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            alpha, beta = 1.0 / 8.0, 1.0 / 4.0
            self._rttvar = ((1 - beta) * self._rttvar
                            + beta * abs(self._srtt - sample))
            self._srtt = (1 - alpha) * self._srtt + alpha * sample
        self._rto = self._srtt + max(4 * self._rttvar, 0.001)
        self._rto = min(max(self._rto, self.config.min_rto),
                        self.config.max_rto)

    def _sample_rtt_for_handshake(self) -> None:
        self._update_rtt(self.sim.now - self.open_time)

    def _arm_rto(self, restart: bool = False) -> None:
        """(Re)arm the retransmission timer.

        ``_rto_deadline`` is the authoritative expiry; the engine event
        is only a wake-up that re-checks it.  Restarting on every ACK is
        therefore a float store, not an engine cancel + reschedule — the
        dominant timer cost of a bulk transfer.
        """
        deadline = self._rto_deadline
        if restart or deadline is None:
            deadline = self.sim._now + self._rto
            self._rto_deadline = deadline
            timer = self._rto_timer
            if timer is None:
                self._rto_timer = self.sim.call_at(deadline, self._on_rto)
            elif timer[0] > deadline:
                # The sleeping wake-up (entry[0] is its scheduled time)
                # would fire too late for the new, earlier deadline (the
                # RTO estimate shrank): reschedule it.
                self.sim.cancel(timer)
                self._rto_timer = self.sim.call_at(deadline, self._on_rto)

    def _cancel_rto(self) -> None:
        # Real cancel, not just a deadline clear: a sleeping wake-up
        # would otherwise keep the queue non-idle after quiesce and
        # stretch run()'s end time past the last real event.
        self._rto_deadline = None
        if self._rto_timer is not None:
            self.sim.cancel(self._rto_timer)
            self._rto_timer = None

    def _cancel_timers(self) -> None:
        self._cancel_rto()
        if self._delack_timer is not None:
            self.sim.cancel(self._delack_timer)
            self._delack_timer = None

    def _on_rto(self) -> None:
        self._rto_timer = None
        deadline = self._rto_deadline
        if deadline is None:
            return  # lazily disarmed; nothing outstanding
        if deadline > self.sim._now:
            # ACK progress pushed the deadline while we slept; sleep out
            # the remainder.
            self._rto_timer = self.sim.call_at(deadline, self._on_rto)
            return
        self._rto_deadline = None
        if not self._outstanding():
            return
        self.stats.timeouts += 1
        if _obs.enabled:
            _obs.metrics.inc("tcp.timeouts")
        self._retries += 1
        limit = (self.config.max_syn_retries
                 if self.state in (State.SYN_SENT, State.SYN_RCVD)
                 else self.config.max_data_retries)
        if self._retries > limit:
            self.abort("retry limit exceeded in %s" % self.state.value)
            return
        self._rto = min(self._rto * 2, self.config.max_rto)
        if self.state == State.SYN_SENT:
            self._transmit(Segment(sport=self.local.port,
                                   dport=self.remote.port,
                                   seq=self.isn, syn=True, retransmit=True))
        elif self.state == State.SYN_RCVD:
            self._transmit(Segment(sport=self.local.port,
                                   dport=self.remote.port,
                                   seq=self.isn, ack=self.peer_isn + 1,
                                   syn=True, ack_flag=True, retransmit=True))
        else:
            self.cc.on_timeout(self._flight_size())
            self._dupacks = 0
            self._retransmit_una()
            return  # _retransmit_una re-armed the timer
        self._arm_rto()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Connection %s %s cwnd=%d>" % (
            self.flow, self.state.value, self.cc.cwnd)
