"""Congestion control.

The default algorithm is a NewReno-flavoured Reno: slow start, additive
increase, fast retransmit / fast recovery with window inflation, and
timeout back-off to one segment.  Window state is kept in *bytes*.

The controller is deliberately separated from the connection state
machine behind a small interface so tests can exercise it directly and an
"always-open" variant can model an operator-tuned internal network (used
by the BE-FE persistent-connection ablation).
"""

from __future__ import annotations

from dataclasses import dataclass


class CongestionController:
    """Interface for congestion-control algorithms.

    All quantities are bytes.  The connection calls the ``on_*`` hooks;
    :attr:`cwnd` is read back when deciding how much may be in flight.
    """

    cwnd: int
    ssthresh: int

    def on_ack(self, newly_acked: int, flight_size: int) -> None:
        raise NotImplementedError

    def on_dup_ack(self) -> None:
        raise NotImplementedError

    def on_fast_retransmit(self, flight_size: int) -> None:
        raise NotImplementedError

    def on_recovery_exit(self) -> None:
        raise NotImplementedError

    def on_timeout(self, flight_size: int) -> None:
        raise NotImplementedError

    @property
    def in_recovery(self) -> bool:
        raise NotImplementedError


@dataclass
class RenoState:
    """Snapshot of a Reno controller, for tracing and assertions."""

    cwnd: int
    ssthresh: int
    in_recovery: bool
    in_slow_start: bool


class RenoController(CongestionController):
    """NewReno-style congestion control in bytes."""

    def __init__(self, mss: int, initial_cwnd: int, initial_ssthresh: int):
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self.cwnd = int(initial_cwnd)
        self.ssthresh = int(initial_ssthresh)
        self._recovery = False
        self._acked_fraction = 0  # CA byte accumulator

    # ------------------------------------------------------------------
    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh and not self._recovery

    @property
    def in_recovery(self) -> bool:
        return self._recovery

    def snapshot(self) -> RenoState:
        return RenoState(self.cwnd, self.ssthresh,
                         self._recovery, self.in_slow_start)

    # ------------------------------------------------------------------
    def on_ack(self, newly_acked: int, flight_size: int) -> None:
        """A cumulative ACK advanced snd_una by ``newly_acked`` bytes."""
        if newly_acked <= 0:
            return
        if self._recovery:
            # Partial ACK during fast recovery: deflate by the amount
            # acked, then add back one MSS (NewReno partial-ack rule).
            self.cwnd = max(self.mss, self.cwnd - newly_acked + self.mss)
            return
        if self.in_slow_start:
            self.cwnd += min(newly_acked, self.mss)
        else:
            # Additive increase: one MSS per cwnd of data acked.
            self._acked_fraction += newly_acked
            if self._acked_fraction >= self.cwnd:
                self._acked_fraction -= self.cwnd
                self.cwnd += self.mss

    def on_dup_ack(self) -> None:
        """Window inflation for each duplicate ACK during recovery."""
        if self._recovery:
            self.cwnd += self.mss

    def on_fast_retransmit(self, flight_size: int) -> None:
        """Enter fast recovery (third duplicate ACK)."""
        self.ssthresh = max(2 * self.mss, flight_size // 2)
        self.cwnd = self.ssthresh + 3 * self.mss
        self._recovery = True
        self._acked_fraction = 0

    def on_recovery_exit(self) -> None:
        """Full ACK received: deflate the window back to ssthresh."""
        self._recovery = False
        self.cwnd = self.ssthresh

    def on_timeout(self, flight_size: int) -> None:
        """RTO fired: collapse to one segment and restart slow start."""
        self.ssthresh = max(2 * self.mss, flight_size // 2)
        self.cwnd = self.mss
        self._recovery = False
        self._acked_fraction = 0


class CubicController(CongestionController):
    """Simplified CUBIC (RFC 8312 shape) — the 2011 Linux default.

    Window growth after a congestion event follows
    ``W(t) = C_CUBIC * (t - K)^3 + W_max`` (in segments, t in seconds),
    which is concave up to the previous maximum and convex beyond it.
    Slow start below ``ssthresh`` is unchanged.  TCP-friendliness
    (the Reno-tracking lower bound) and fast-convergence are included in
    simplified form; hybrid slow start is not.

    The controller needs wall-clock time: pass the simulator's clock as
    the ``clock`` callable.
    """

    C_CUBIC = 0.4     # segments / s^3, the standard constant
    BETA = 0.7        # multiplicative decrease factor

    def __init__(self, mss: int, initial_cwnd: int, initial_ssthresh: int,
                 clock):
        if mss <= 0:
            raise ValueError("mss must be positive")
        if not callable(clock):
            raise TypeError("clock must be callable")
        self.mss = mss
        self.cwnd = int(initial_cwnd)
        self.ssthresh = int(initial_ssthresh)
        self.clock = clock
        self._recovery = False
        self._w_max = float(initial_cwnd) / mss   # segments
        self._epoch_start: float = None
        self._k = 0.0

    # ------------------------------------------------------------------
    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh and not self._recovery

    @property
    def in_recovery(self) -> bool:
        return self._recovery

    # ------------------------------------------------------------------
    def _begin_epoch(self) -> None:
        self._epoch_start = self.clock()
        w_now = self.cwnd / self.mss
        if w_now < self._w_max:
            self._k = ((self._w_max - w_now) / self.C_CUBIC) ** (1.0 / 3)
        else:
            self._k = 0.0
            self._w_max = w_now

    def _cubic_window_segments(self) -> float:
        if self._epoch_start is None:
            self._begin_epoch()
        t = self.clock() - self._epoch_start
        return (self.C_CUBIC * (t - self._k) ** 3 + self._w_max)

    # ------------------------------------------------------------------
    def on_ack(self, newly_acked: int, flight_size: int) -> None:
        if newly_acked <= 0:
            return
        if self._recovery:
            self.cwnd = max(self.mss, self.cwnd - newly_acked + self.mss)
            return
        if self.in_slow_start:
            self.cwnd += min(newly_acked, self.mss)
            return
        target = self._cubic_window_segments() * self.mss
        if target > self.cwnd:
            # Approach the cubic target gradually (per-RTT pacing is
            # approximated by capping growth per ACK).
            self.cwnd = int(min(target, self.cwnd + self.mss))
        else:
            # TCP-friendly floor: never grow slower than Reno's
            # 1 MSS / RTT (approximated as Reno's per-ack share).
            self.cwnd += max(0, int(self.mss * newly_acked / self.cwnd))

    def on_dup_ack(self) -> None:
        if self._recovery:
            self.cwnd += self.mss

    def on_fast_retransmit(self, flight_size: int) -> None:
        w_now = self.cwnd / self.mss
        # Fast convergence: release bandwidth faster when the max drops.
        if w_now < self._w_max:
            self._w_max = w_now * (1.0 + self.BETA) / 2.0
        else:
            self._w_max = w_now
        self.ssthresh = max(2 * self.mss, int(self.cwnd * self.BETA))
        self.cwnd = self.ssthresh + 3 * self.mss
        self._recovery = True
        self._epoch_start = None

    def on_recovery_exit(self) -> None:
        self._recovery = False
        self.cwnd = self.ssthresh
        self._begin_epoch()

    def on_timeout(self, flight_size: int) -> None:
        self._w_max = self.cwnd / self.mss
        self.ssthresh = max(2 * self.mss, int(self.cwnd * self.BETA))
        self.cwnd = self.mss
        self._recovery = False
        self._epoch_start = None


class FixedWindowController(CongestionController):
    """A controller pinned at a constant window.

    Models a provisioned internal path (e.g. an operator's private FE-BE
    backbone with tuned stacks) and is used by ablation benchmarks to
    isolate the effect of window ramp-up from propagation delay.
    """

    def __init__(self, window_bytes: int):
        if window_bytes <= 0:
            raise ValueError("window must be positive")
        self.cwnd = int(window_bytes)
        self.ssthresh = int(window_bytes)

    def on_ack(self, newly_acked: int, flight_size: int) -> None:
        pass

    def on_dup_ack(self) -> None:
        pass

    def on_fast_retransmit(self, flight_size: int) -> None:
        pass

    def on_recovery_exit(self) -> None:
        pass

    def on_timeout(self, flight_size: int) -> None:
        pass

    @property
    def in_recovery(self) -> bool:
        return False
