"""Bounded-memory streaming campaign runner.

The classic drivers (:mod:`repro.measure.driver`) materialize one
emulator *and one result record per query* — fine for the paper's
hundreds of sessions, hopeless for an open-loop workload with millions.
:func:`run_streaming_campaign` consumes a lazy event stream
(:mod:`repro.workload`) batch by batch and folds every completed
session into aggregates the moment it finishes:

* online percentile sketches (:class:`~repro.analysis.sketch.QuantileSketch`)
  per service for session duration and response bytes;
* counters (events, sessions, failures) plus the usual replay/tier
  accounting;
* sim-scope obs metrics when tracing is enabled.

Nothing grows with the event count: folded sessions are dropped, their
packet-capture slices trimmed, their ground-truth FE/BE log entries
pruned, and the submission schedule is a sliding window
(:class:`StreamingSchedule`).  Peak memory is set by the number of
sessions *in flight*, i.e. by the arrival rate — not the duration.

The runner reuses the exact campaign executors of the batch drivers
(replay cache, tiered manager), so a streaming run's per-session
behavior is identical to the equivalent batch campaign's; only the
bookkeeping differs.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left, bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.sketch import QuantileSketch, merge_sketches
from repro.cache import aggregate_stats
from repro.measure.driver import _campaign_manager
from repro.measure.emulator import QueryEmulator
from repro.obs import runtime as _obs
from repro.obs.metrics import SCOPE_SIM, MetricsSnapshot
from repro.sim.analytic import TierStats
from repro.sim.replay import ReplayStats
from repro.sim.replay.manager import GUARD_FLOOR, GUARD_RTT_MULTIPLE
from repro.testbed.scenario import Scenario
from repro.testbed.vantage import VantagePoint
from repro.workload.generator import QueryEvent, WorkloadSpec

__all__ = ["StreamingCampaignResult", "StreamingSchedule",
           "run_streaming_campaign"]

#: Histogram bounds mirrored from repro.obs.record (seconds / bytes).
DURATION_BOUNDS = (0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0, 1.5, 2.0,
                   5.0)  # simlint: unit[s]
SIZE_BOUNDS = (4_096, 16_384, 32_768, 65_536, 131_072,
               262_144)  # simlint: unit[bytes]

#: Default seconds of schedule visibility kept ahead of the clock.
DEFAULT_LOOKAHEAD = 30.0  # simlint: unit[s]

#: Default events scheduled per simulator burst.
DEFAULT_BATCH_EVENTS = 2048

#: Compact a schedule's per-FE list when its dead prefix exceeds this.
_PRUNE_SLACK = 2048


class StreamingSchedule:
    """A sliding-window :class:`~repro.sim.replay.SubmissionSchedule`.

    The batch drivers precompute every submission time; a streaming
    campaign cannot (the stream may be unbounded), so the runner feeds
    times in stream order as events are fetched and prunes behind the
    oldest in-flight session.  Duck-types the two methods the replay
    and tier managers consult.

    Contract: ``count_at``/``next_after`` answers are exact for any
    query whose relevant window lies between the prune point and the
    fed horizon.  The runner maintains a fed horizon at least
    ``lookahead`` seconds ahead of the clock and verifies at fold time
    that every session's isolation window (duration + guard) fits
    inside it, so manager comparisons (`next_after(fe, t) < end`) are
    independent of batch size and sharding.
    """

    def __init__(self):
        self._times: Dict[str, List[float]] = {}

    def feed(self, fe_name: str, time: float) -> None:
        """Append one planned submission (stream order = sorted)."""
        self._times.setdefault(fe_name, []).append(time)

    def prune(self, before: float) -> None:
        """Forget times earlier than ``before`` (amortized, batched)."""
        for fe_name, times in self._times.items():
            low = bisect_left(times, before)
            if low > _PRUNE_SLACK:
                self._times[fe_name] = times[low:]

    # -- the SubmissionSchedule duck-type ------------------------------
    def count_at(self, fe_name: str, time: float) -> int:
        times = self._times.get(fe_name)
        if not times:
            return 0
        return bisect_right(times, time) - bisect_left(times, time)

    def next_after(self, fe_name: str, time: float) -> float:
        times = self._times.get(fe_name)
        if times:
            index = bisect_right(times, time)
            if index < len(times):
                return times[index]
        return float("inf")


@dataclass
class StreamingCampaignResult:
    """Aggregate outcome of a streaming campaign (no per-query data)."""

    spec: Optional[WorkloadSpec] = None
    #: Queries submitted / sessions folded / failures among them.
    events: int = 0
    sessions: int = 0
    failures: int = 0
    #: Sessions still incomplete when the simulation drained.
    truncated: int = 0
    shards: int = 1
    replay: Optional[ReplayStats] = None
    tier: Optional[TierStats] = None
    #: name -> sketch; names are "duration/<service>" (seconds) and
    #: "bytes/<service>" (response bytes).
    sketches: Dict[str, QuantileSketch] = field(default_factory=dict)
    obs_metrics: Optional[MetricsSnapshot] = None
    #: Aggregated finite content-cache counters over every front-end
    #: the campaign touched (None when the scenario runs the degenerate
    #: infinite cache — keeps default fingerprints unchanged).  See
    #: :func:`repro.cache.tier.aggregate_stats` for the keys.
    content_cache: Optional[Dict[str, int]] = None

    def sketch(self, name: str) -> QuantileSketch:
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = QuantileSketch()
        return sketch

    def quantile(self, name: str, q: float) -> Optional[float]:
        sketch = self.sketches.get(name)
        return sketch.quantile(q) if sketch is not None else None

    def hit_rate(self) -> Optional[float]:
        """Replay-cache hit fraction of submitted events (None = off)."""
        if self.replay is None or self.events == 0:
            return None
        return self.replay.hits / self.events

    def content_hit_rate(self) -> Optional[float]:
        """FE static-cache hit fraction (None without finite caches)."""
        stats = self.content_cache
        if not stats:
            return None
        lookups = stats.get("fe_hits", 0) + stats.get("fe_misses", 0)
        if lookups == 0:
            return None
        return stats["fe_hits"] / lookups

    def fingerprint(self) -> str:
        """SHA-256 over the deterministic aggregate state.

        Covers the counters, every sketch, and (when observability was
        enabled) the canonical sim-scope metric records — exactly the
        data contracted to be bit-identical between a serial run and
        any sharding of it.  Host-scope metrics and replay/tier *work*
        counters are excluded: they describe how the answer was
        computed, not the answer.
        """
        digest = hashlib.sha256()
        digest.update(b"streaming-campaign/v1\n")
        digest.update(("events=%d sessions=%d failures=%d truncated=%d\n"
                       % (self.events, self.sessions, self.failures,
                          self.truncated)).encode())
        for name in sorted(self.sketches):
            digest.update(("sketch %s %s\n"
                           % (name, self.sketches[name].fingerprint()))
                          .encode())
        if self.content_cache is not None:
            digest.update(b"content-cache ")
            digest.update(json.dumps(self.content_cache,
                                     sort_keys=True).encode())
            digest.update(b"\n")
        if self.obs_metrics is not None:
            records = self.obs_metrics.scoped(SCOPE_SIM).as_records()
            digest.update(json.dumps(records, sort_keys=True).encode())
        return digest.hexdigest()

    @classmethod
    def merged(cls, parts: Sequence["StreamingCampaignResult"]
               ) -> "StreamingCampaignResult":
        """Exact, order-independent merge of per-shard results.

        Observability handling (rollback/absorb of the merged delta)
        is the caller's job — see
        :func:`repro.parallel.run_streaming_sharded`.
        """
        merged = cls(spec=parts[0].spec if parts else None)
        merged.shards = len(parts)
        names: List[str] = []
        for part in parts:
            merged.events += part.events
            merged.sessions += part.sessions
            merged.failures += part.failures
            merged.truncated += part.truncated
            for name in part.sketches:
                if name not in names:
                    names.append(name)
        replay = [part.replay for part in parts
                  if part.replay is not None]
        merged.replay = sum(replay) if replay else None
        tier = [part.tier for part in parts if part.tier is not None]
        merged.tier = sum(tier) if tier else None
        for name in sorted(names):
            merged.sketches[name] = merge_sketches(
                part.sketches[name] for part in parts
                if name in part.sketches)
        cache_parts = [part.content_cache for part in parts
                       if part.content_cache is not None]
        if cache_parts:
            totals: Dict[str, int] = {}
            for stats in cache_parts:
                for key, value in stats.items():
                    totals[key] = totals.get(key, 0) + value
            merged.content_cache = totals
        snapshots = [part.obs_metrics for part in parts
                     if part.obs_metrics is not None]
        if snapshots:
            merged.obs_metrics = MetricsSnapshot.merge(snapshots)
        return merged


class _EventFeed:
    """Pulls the filtered stream, feeding the schedule ahead of play."""

    def __init__(self, events: Iterator[QueryEvent],
                 schedule: StreamingSchedule,
                 fe_names: Dict[Tuple[str, str], str]):
        self._events = events
        self._schedule = schedule
        self._fe_names = fe_names
        self._buffer: "deque[QueryEvent]" = deque()
        self.exhausted = False
        self.fed_until = 0.0  # simlint: unit[s]

    def _pull(self) -> bool:
        event = next(self._events, None)
        if event is None:
            self.exhausted = True
            return False
        self._schedule.feed(
            self._fe_names[(event.service, event.vp_name)], event.time)
        self.fed_until = event.time
        self._buffer.append(event)
        return True

    def next_batch(self, batch_events: int,
                   lookahead: float) -> List[QueryEvent]:
        """The next batch, with the schedule fed ``lookahead`` beyond
        the batch horizon (or to stream end)."""
        while len(self._buffer) < batch_events and not self.exhausted:
            self._pull()
        if not self._buffer:
            return []
        take = min(batch_events, len(self._buffer))
        batch = [self._buffer.popleft() for _ in range(take)]
        horizon = batch[-1].time
        while not self.exhausted \
                and self.fed_until < horizon + lookahead:
            self._pull()
        return batch


def run_streaming_campaign(scenario: Scenario, workload, *,
                           vantage_points: Optional[
                               Sequence[VantagePoint]] = None,
                           batch_events: int = DEFAULT_BATCH_EVENTS,
                           lookahead: float = DEFAULT_LOOKAHEAD,
                           tier: Optional[str] = None,
                           replay_cache=None) -> StreamingCampaignResult:
    """Run an open-loop workload through the streaming folder.

    ``workload`` is any object with ``services``, ``events()`` and
    ``events_for(names)`` — an
    :class:`~repro.workload.generator.OpenLoopWorkload`, a
    :class:`~repro.workload.trace.TraceWorkload`, or a stand-in.
    ``vantage_points`` restricts the run to a fleet subset (the shard
    worker's case); events of other VPs are skipped, their session
    draws untouched.

    ``tier`` and ``replay_cache`` behave exactly as on
    :func:`~repro.measure.driver.run_dataset_a`.  ``lookahead`` is the
    schedule visibility window; it must exceed every session's
    isolation window (duration + guard), which the runner verifies as
    sessions fold.
    """
    if batch_events < 1:
        raise ValueError("batch_events must be >= 1")
    if lookahead <= 0.0:
        raise ValueError("lookahead must be > 0")
    vps = list(vantage_points or scenario.vantage_points)
    services = list(workload.services)
    if not services:
        raise ValueError("workload names no services")

    result = StreamingCampaignResult(
        spec=getattr(workload, "spec", None))
    schedule = StreamingSchedule()
    manager = _campaign_manager(scenario, schedule, tier, replay_cache,
                                False, None)

    emulators: Dict[str, QueryEmulator] = {}
    frontends: Dict[Tuple[str, str], object] = {}
    fe_names: Dict[Tuple[str, str], str] = {}
    fe_by_name: Dict[str, object] = {}
    backends: Dict[Tuple[str, str], object] = {}
    for vp in vps:
        emulators[vp.name] = QueryEmulator(scenario, vp)
        for service_name in services:
            frontend, _ = scenario.connect_default(service_name, vp)
            key = (service_name, vp.name)
            frontends[key] = frontend
            fe_names[key] = frontend.node.name
            fe_by_name[frontend.node.name] = frontend
            backends[(service_name, frontend.node.name)] = \
                scenario.service(service_name) \
                .backend_for_frontend(frontend)

    metrics_base = _obs.metrics.snapshot() if _obs.enabled else None

    def submit(event: QueryEvent) -> None:
        emulator = emulators[event.vp_name]
        frontend = frontends[(event.service, event.vp_name)]
        result.events += 1
        if manager is not None:
            manager.submit(emulator, event.service, frontend,
                           event.keyword)
        else:
            emulator.submit(event.service, frontend, event.keyword)

    def observe_session(session) -> None:
        duration = session.completed_at - session.started_at
        guard = GUARD_FLOOR + GUARD_RTT_MULTIPLE * session.path_rtt
        if duration + guard > lookahead:
            raise RuntimeError(
                "session isolation window (%.3fs) exceeds the schedule "
                "lookahead (%.3fs); raise run_streaming_campaign's "
                "lookahead" % (duration + guard, lookahead))
        result.sessions += 1
        if session.failed is not None:
            result.failures += 1
        else:
            result.sketch("duration/%s" % session.service) \
                .observe(duration)
            result.sketch("bytes/%s" % session.service) \
                .observe(float(session.response_size))
        if _obs.enabled:
            _obs.metrics.inc("stream.sessions", scope=SCOPE_SIM)
            _obs.metrics.observe("stream.session.duration", duration,
                                 bounds=DURATION_BOUNDS,
                                 scope=SCOPE_SIM)
            if session.failed is None:
                _obs.metrics.observe("stream.session.bytes",
                                     float(session.response_size),
                                     bounds=SIZE_BOUNDS,
                                     scope=SCOPE_SIM)
            else:
                _obs.metrics.inc("stream.failures", scope=SCOPE_SIM)

    def fold(final: bool = False) -> None:
        # Settle the manager's completed record/validate entries first:
        # settling consults the schedule and the ground-truth logs this
        # fold is about to prune.
        if manager is not None:
            manager._drain()
        now = scenario.sim.now
        oldest = None  # earliest start among in-flight sessions
        for emulator in emulators.values():
            if not emulator.sessions:
                continue
            in_flight = []
            for session in emulator.sessions:
                if session.completed_at is None:
                    if final:
                        result.truncated += 1
                        continue
                    in_flight.append(session)
                    if oldest is None or session.started_at < oldest:
                        oldest = session.started_at
                    continue
                observe_session(session)
                frontend = fe_by_name.get(session.fe_name)
                if frontend is not None:
                    frontend.fetch_log.pop(session.query_id, None)
                    frontend.static_hit_log.pop(session.query_id, None)
                backend = backends.get((session.service,
                                        session.fe_name))
                if backend is not None:
                    backend.query_log.pop(session.query_id, None)
            emulator.sessions[:] = in_flight
            cut = min((s.started_at for s in in_flight), default=now)
            emulator.drop_capture_before(cut)
        schedule.prune(oldest if oldest is not None else now)

    feed = _EventFeed(
        workload.events_for([vp.name for vp in vps]), schedule,
        fe_names)
    sim = scenario.sim
    while True:
        batch = feed.next_batch(batch_events, lookahead)
        if not batch:
            break
        horizon = batch[-1].time
        for event in batch:
            # Absolute-time scheduling: the submission instant must
            # equal the fed schedule time bit-for-bit (the managers
            # compare them for equality).
            sim.call_at(event.time, submit, event)
        sim.run(until=horizon)
        fold()
    sim.run()  # drain in-flight tails
    fold(final=True)

    if manager is not None:
        from repro.measure.driver import _finalize_manager
        _finalize_manager(result, manager)
    result.content_cache = aggregate_stats(
        fe.static_cache for fe in fe_by_name.values())
    if metrics_base is not None:
        if _obs.enabled:
            _obs.metrics.inc("campaign.streaming")
        result.obs_metrics = \
            _obs.metrics.snapshot().subtract(metrics_base)
    return result
