"""Client-side packet capture (the simulated tcpdump).

A :class:`PacketCapture` attaches to a node as a tap and records one
:class:`PacketEvent` per packet the node sends or receives — timestamp,
direction, addressing, TCP flags/sequence numbers, and (optionally) the
payload bytes.  The analysis pipeline consumes *only* these events, never
simulator internals, mirroring how the paper works exclusively from
tcpdump traces.

Payload storage is optional because large campaigns (hundreds of nodes x
hundreds of queries) don't need bodies for every query: the content
analysis that locates the static/dynamic boundary runs on a small
calibration set with payloads on, after which temporal classification
needs only sequence numbers.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.tcp.segment import Segment


class PacketEvent:
    """One captured packet, as tcpdump would log it.

    A manual ``__slots__`` class (not a dataclass): one instance is
    appended per packet per tapped host, which makes its constructor a
    measurement-campaign hot path.
    """

    __slots__ = ("time", "direction", "src", "dst", "sport", "dport",
                 "wire_size", "payload_len", "seq", "ack", "syn", "fin",
                 "ack_flag", "retransmit", "payload")

    def __init__(self, time: float, direction: str, src: str, dst: str,
                 sport: int, dport: int, wire_size: int, payload_len: int,
                 seq: int, ack: int, syn: bool, fin: bool, ack_flag: bool,
                 retransmit: bool, payload: Optional[bytes] = None):
        self.time = time
        self.direction = direction  # "out" or "in"
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.wire_size = wire_size
        self.payload_len = payload_len
        self.seq = seq
        self.ack = ack
        self.syn = syn
        self.fin = fin
        self.ack_flag = ack_flag
        self.retransmit = retransmit
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PacketEvent %s>" % self.describe()

    @property
    def is_pure_ack(self) -> bool:
        return (self.ack_flag and self.payload_len == 0
                and not self.syn and not self.fin)

    @property
    def local_port(self) -> int:
        """The captured host's port for this packet."""
        return self.sport if self.direction == "out" else self.dport

    def describe(self) -> str:
        """tcpdump-style one-liner."""
        arrow = ">" if self.direction == "out" else "<"
        flags = "".join(c for f, c in ((self.syn, "S"), (self.fin, "F"),
                                       (self.ack_flag, ".")) if f)
        return "%.6f %s %s:%d %s %s:%d [%s] seq=%d ack=%d len=%d" % (
            self.time, arrow, self.src, self.sport, arrow,
            self.dst, self.dport, flags, self.seq, self.ack,
            self.payload_len)


class PacketCapture:
    """Tap-based packet recorder for one host."""

    def __init__(self, sim: Simulator, node: Node,
                 store_payload: bool = False):
        self.sim = sim
        self.node = node
        self.store_payload = store_payload
        self.events: List[PacketEvent] = []
        self._tap: Optional[Callable] = None
        self.attach()

    def attach(self) -> None:
        if self._tap is not None:
            return
        self._tap = self._observe
        self.node.add_tap(self._tap)

    def detach(self) -> None:
        if self._tap is not None:
            self.node.remove_tap(self._tap)
            self._tap = None

    def clear(self) -> None:
        self.events.clear()

    # ------------------------------------------------------------------
    def _observe(self, event: str, packet: Packet) -> None:
        if event not in ("send", "recv"):
            return
        segment = packet.payload
        if not isinstance(segment, Segment):
            return
        direction = "out" if event == "send" else "in"
        # The capture is the materialization boundary for zero-copy
        # segment payloads: bytes are synthesized from the wire's lazy
        # views here and only here.  With store_payload=False (the
        # default for measurement campaigns) payload travels the whole
        # simulated path length-only.
        self.events.append(PacketEvent(
            time=self.sim.now,
            direction=direction,
            src=packet.src, dst=packet.dst,
            sport=segment.sport, dport=segment.dport,
            wire_size=packet.size_bytes,
            payload_len=len(segment.data),
            seq=segment.seq, ack=segment.ack,
            syn=segment.syn, fin=segment.fin,
            ack_flag=segment.ack_flag,
            retransmit=segment.retransmit,
            payload=bytes(segment.data) if self.store_payload else None))

    # ------------------------------------------------------------------
    def inject(self, events: List[PacketEvent]) -> None:
        """Append pre-built events, as if the tap had observed them.

        Used by the session-replay cache to make a replayed session
        leave exactly the capture footprint its full simulation would
        have left.  The caller is responsible for event times: injected
        events should not be later than the simulation clock (the tap
        only ever appends at ``sim.now``, so per-port chronological
        order is preserved as long as injection happens at or after the
        last event's timestamp).
        """
        self.events.extend(events)

    # ------------------------------------------------------------------
    def flow_events(self, local_port: int,
                    start: float = 0.0,
                    end: float = float("inf")) -> List[PacketEvent]:
        """Events of one connection (by the host's local port), within a
        time window — the per-session trace slice."""
        return [e for e in self.events
                if e.local_port == local_port and start <= e.time < end]
