"""The in-house search query emulator.

The paper: "we develop an in-house user search query emulator, which
performs exactly the same functionality as the web-based search box".
:class:`QueryEmulator` does the same against the simulated services: it
issues one GET per query on a *fresh* TCP connection (as browsers of the
era did for search result pages) toward a chosen front-end server,
captures the packet trace of that connection, and packages everything
into a :class:`~repro.measure.session.QuerySession`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.content.keywords import Keyword
from repro.http.client import HttpFetch, RequestHooks
from repro.http.message import HttpRequest, build_query_path
from repro.measure.capture import PacketCapture
from repro.measure.session import QuerySession
from repro.services.frontend import FRONTEND_PORT, FrontEndServer
from repro.net.address import Endpoint
from repro.testbed.scenario import Scenario
from repro.testbed.vantage import VantagePoint

#: Query ids are namespaced by vantage point (ids must be globally
#: unique: they key the ground-truth fetch/query logs) and use a fixed
#: width counter so request sizes stay stable across a campaign.
_QUERY_ID_TEMPLATE = "q-%s-%06d"


class QueryEmulator:
    """Issues search queries from one vantage point."""

    def __init__(self, scenario: Scenario, vp: VantagePoint,
                 store_payload: bool = False):
        self.scenario = scenario
        self.vp = vp
        self.tcp_host = scenario.client_host(vp)
        self.capture = PacketCapture(scenario.sim, self.tcp_host.node,
                                     store_payload=store_payload)
        self.sessions: List[QuerySession] = []
        self._counter = 0

    # ------------------------------------------------------------------
    def next_query_id(self) -> str:
        self._counter += 1
        return _QUERY_ID_TEMPLATE % (self.vp.name, self._counter)

    def peek_query_id(self) -> str:
        """The id :meth:`next_query_id` will return next, without
        consuming it.

        The session-replay cache fingerprints a submission *before*
        deciding whether to simulate it, and the fingerprint includes
        query-id-keyed service draws — so it must know the id the
        emulator is about to assign.
        """
        return _QUERY_ID_TEMPLATE % (self.vp.name, self._counter + 1)

    def submit(self, service_name: str, frontend: FrontEndServer,
               keyword: Keyword,
               query_id: Optional[str] = None) -> QuerySession:
        """Issue one query; returns the (initially incomplete) session.

        The caller must have linked the vantage point to ``frontend``
        (see :meth:`Scenario.link_client_to_frontend`) and should run the
        simulator afterwards; the session fills itself in as the
        response arrives.
        """
        service = self.scenario.service(service_name)
        service.register_keywords([keyword])
        query_id = query_id or self.next_query_id()
        session = QuerySession(
            query_id=query_id,
            service=service_name,
            vp_name=self.vp.name,
            fe_name=frontend.node.name,
            keyword=keyword,
            started_at=self.scenario.sim.now,
            path_rtt=self.scenario.client_fe_rtt(self.vp, frontend,
                                                 service))
        path = build_query_path("/search", {"q": keyword.text,
                                            "id": query_id})
        hooks = RequestHooks(
            on_complete=lambda response: self._complete(session, response),
            on_failure=lambda message: self._fail(session, message))
        fetch = HttpFetch(self.tcp_host,
                          Endpoint(frontend.node.name, FRONTEND_PORT),
                          HttpRequest(path=path,
                                      headers={"Host": service_name}),
                          hooks)
        session.local_port = fetch.conn.flow.local.port
        self.sessions.append(session)
        return session

    def submit_default(self, service_name: str,
                       keyword: Keyword) -> QuerySession:
        """Resolve the default FE via DNS, link, and submit."""
        frontend, _ = self.scenario.connect_default(service_name, self.vp)
        return self.submit(service_name, frontend, keyword)

    # ------------------------------------------------------------------
    def _complete(self, session: QuerySession, response) -> None:
        session.completed_at = self.scenario.sim.now
        session.response_size = len(response.body)
        self._harvest(session)

    def _fail(self, session: QuerySession, message: str) -> None:
        session.failed = message
        session.completed_at = self.scenario.sim.now
        self._harvest(session)

    def _harvest(self, session: QuerySession) -> None:
        """Slice this session's packets out of the host-wide capture."""
        session.events = self.capture.flow_events(
            session.local_port, start=session.started_at,
            end=self.scenario.sim.now + 1e-9)

    def drop_capture_before(self, time: float) -> None:
        """Free memory: forget packets captured before ``time``.

        Long campaigns call this after harvesting each batch.
        """
        self.capture.events = [e for e in self.capture.events
                               if e.time >= time]
