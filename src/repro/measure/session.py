"""Query sessions: the unit of measurement.

One :class:`QuerySession` is everything the study records about a single
search query issued from a single vantage point: metadata (service, FE,
keyword, query id), application-level outcome, and the packet-level trace
slice of the query's TCP connection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.content.keywords import Keyword
from repro.measure.capture import PacketEvent


@dataclass
class QuerySession:
    """One emulated search query and its captured trace."""

    query_id: str
    service: str
    vp_name: str
    fe_name: str
    keyword: Keyword
    local_port: int = 0
    started_at: float = 0.0
    completed_at: Optional[float] = None
    failed: Optional[str] = None
    response_size: int = 0
    #: Packet events of this query's connection (client viewpoint).
    events: List[PacketEvent] = field(default_factory=list)
    #: Round-trip propagation delay client<->FE for this session's path.
    path_rtt: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.completed_at is not None and self.failed is None

    @property
    def duration(self) -> Optional[float]:  # simlint: unit[s]
        """Wall-clock duration from connection open to response end."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    def inbound_data_events(self) -> List[PacketEvent]:
        """Inbound packets carrying payload, in arrival order."""
        return [e for e in self.events
                if e.direction == "in" and e.payload_len > 0]

    def outbound_events(self) -> List[PacketEvent]:
        return [e for e in self.events if e.direction == "out"]
