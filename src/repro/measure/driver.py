"""Experiment drivers: the paper's two measurement campaigns.

* **Datasets A** — every vantage point queries its *default* (DNS-
  resolved) front-end server of each service every ``interval`` seconds.
* **Datasets B** — one *fixed* front-end server per service; every
  vantage point queries it repeatedly with the same keyword.

Both drivers stagger vantage-point start times so queries don't
synchronise, run the simulation to completion, and return dataset objects
holding completed :class:`~repro.measure.session.QuerySession` lists.

A vantage point's stagger offset is derived from its index in the
scenario's *full* fleet, not its position in the subset handed to the
driver: a sharded campaign (see :mod:`repro.parallel`) that runs each VP
subset in its own process must give every query the exact start time it
would have had in the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.content.keywords import Keyword
from repro.measure.emulator import QueryEmulator
from repro.measure.session import QuerySession
from repro.services.frontend import FrontEndServer
from repro.sim.process import Sleep, spawn
from repro.testbed.scenario import Scenario
from repro.testbed.vantage import VantagePoint


@dataclass
class DatasetA:
    """Default-FE campaign results (paper's Datasets A)."""

    sessions: List[QuerySession] = field(default_factory=list)
    #: (vp_name, service) -> (fe_name, rtt_seconds)
    default_fe: Dict[Tuple[str, str], Tuple[str, float]] = \
        field(default_factory=dict)

    def for_service(self, service: str) -> List[QuerySession]:
        return [s for s in self.sessions if s.service == service]

    def for_vp(self, vp_name: str, service: Optional[str] = None
               ) -> List[QuerySession]:
        return [s for s in self.sessions
                if s.vp_name == vp_name
                and (service is None or s.service == service)]


@dataclass
class DatasetB:
    """Fixed-FE campaign results (paper's Datasets B) for one service."""

    service: str
    fe_name: str
    sessions: List[QuerySession] = field(default_factory=list)

    def for_vp(self, vp_name: str) -> List[QuerySession]:
        return [s for s in self.sessions if s.vp_name == vp_name]


def run_dataset_a(scenario: Scenario, keywords: Sequence[Keyword], *,
                  repeats: int = 10,
                  interval: float = 10.0,
                  services: Optional[Sequence[str]] = None,
                  vantage_points: Optional[Sequence[VantagePoint]] = None,
                  store_payload: bool = False,
                  run_timeout: Optional[float] = None) -> DatasetA:
    """Run the default-FE campaign and return its sessions.

    Each vantage point issues ``repeats`` rounds; in every round it sends
    one query per service (cycling through ``keywords``), then sleeps
    ``interval`` seconds.
    """
    if not keywords:
        raise ValueError("need at least one keyword")
    services = list(services or scenario.services)
    vps = list(vantage_points or scenario.vantage_points)
    dataset = DatasetA()
    emulators = []
    staggers = _fleet_staggers(scenario, vps, interval)

    for vp in vps:
        emulator = QueryEmulator(scenario, vp, store_payload=store_payload)
        emulators.append(emulator)
        frontends = {}
        for service_name in services:
            frontend, rtt = scenario.connect_default(service_name, vp)
            frontends[service_name] = frontend
            dataset.default_fe[(vp.name, service_name)] = \
                (frontend.node.name, rtt)
        spawn(scenario.sim,
              _vp_loop(scenario, emulator, frontends, keywords,
                       repeats, interval, staggers[vp.name]))

    scenario.sim.run(until=run_timeout)
    for emulator in emulators:
        dataset.sessions.extend(emulator.sessions)
    return dataset


def _fleet_staggers(scenario: Scenario, vps: Sequence[VantagePoint],
                    interval: float) -> Dict[str, float]:
    """Per-VP start offsets, positioned by index in the *full* fleet.

    Vantage points not in the scenario fleet (possible only with
    hand-built VP lists) are appended after it, preserving the old
    subset-relative behaviour for them.
    """
    fleet_index = {vp.name: index
                   for index, vp in enumerate(scenario.vantage_points)}
    fleet_size = max(1, len(scenario.vantage_points))
    staggers = {}
    extra = len(fleet_index)
    for vp in vps:
        index = fleet_index.get(vp.name)
        if index is None:
            index = extra
            extra += 1
        staggers[vp.name] = (index / fleet_size) * interval
    return staggers


def _vp_loop(scenario: Scenario, emulator: QueryEmulator,
             frontends: Dict[str, FrontEndServer],
             keywords: Sequence[Keyword], repeats: int,
             interval: float, stagger: float):
    """Per-vantage-point query loop (a simulator process)."""
    if stagger > 0:
        yield Sleep(stagger)
    for round_index in range(repeats):
        keyword = keywords[round_index % len(keywords)]
        for service_name, frontend in frontends.items():
            emulator.submit(service_name, frontend, keyword)
        yield Sleep(interval)


def run_dataset_b(scenario: Scenario, service_name: str,
                  frontend: FrontEndServer, keyword: Keyword, *,
                  repeats: int = 10,
                  interval: float = 10.0,
                  vantage_points: Optional[Sequence[VantagePoint]] = None,
                  store_payload: bool = False,
                  run_timeout: Optional[float] = None) -> DatasetB:
    """Run the fixed-FE campaign for one service and return its sessions."""
    vps = list(vantage_points or scenario.vantage_points)
    service = scenario.service(service_name)
    dataset = DatasetB(service=service_name, fe_name=frontend.node.name)
    emulators = []

    staggers = _fleet_staggers(scenario, vps, interval)
    for vp in vps:
        scenario.link_client_to_frontend(vp, frontend, service)
        emulator = QueryEmulator(scenario, vp, store_payload=store_payload)
        emulators.append(emulator)
        spawn(scenario.sim,
              _fixed_fe_loop(emulator, service_name, frontend, keyword,
                             repeats, interval, staggers[vp.name]))

    scenario.sim.run(until=run_timeout)
    for emulator in emulators:
        dataset.sessions.extend(emulator.sessions)
    return dataset


def _fixed_fe_loop(emulator: QueryEmulator, service_name: str,
                   frontend: FrontEndServer, keyword: Keyword,
                   repeats: int, interval: float, stagger: float):
    if stagger > 0:
        yield Sleep(stagger)
    for _ in range(repeats):
        emulator.submit(service_name, frontend, keyword)
        yield Sleep(interval)


def run_single_queries(scenario: Scenario, service_name: str,
                       frontend: FrontEndServer,
                       assignments: Iterable[Tuple[VantagePoint, Keyword]],
                       *, spacing: float = 1.0,
                       store_payload: bool = False) -> List[QuerySession]:
    """Issue one query per (vantage point, keyword) pair, spaced in time.

    Used by the FE-caching experiments: "all measurement nodes submit the
    same search query sequentially to a fixed FE server" (spacing > 0
    makes them sequential) and "each node submits a different search
    query".
    """
    service = scenario.service(service_name)
    sessions: List[QuerySession] = []
    emulators = []
    for index, (vp, keyword) in enumerate(assignments):
        scenario.link_client_to_frontend(vp, frontend, service)
        emulator = QueryEmulator(scenario, vp, store_payload=store_payload)
        emulators.append(emulator)
        scenario.sim.schedule(index * spacing, emulator.submit,
                              service_name, frontend, keyword)
    scenario.sim.run()
    for emulator in emulators:
        sessions.extend(emulator.sessions)
    return sessions
