"""Experiment drivers: the paper's two measurement campaigns.

* **Datasets A** — every vantage point queries its *default* (DNS-
  resolved) front-end server of each service every ``interval`` seconds.
* **Datasets B** — one *fixed* front-end server per service; every
  vantage point queries it repeatedly with the same keyword.

Both drivers stagger vantage-point start times so queries don't
synchronise, run the simulation to completion, and return dataset objects
holding completed :class:`~repro.measure.session.QuerySession` lists.

A vantage point's stagger offset is derived from its index in the
scenario's *full* fleet, not its position in the subset handed to the
driver: a sharded campaign (see :mod:`repro.parallel`) that runs each VP
subset in its own process must give every query the exact start time it
would have had in the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.content.keywords import Keyword
from repro.measure.emulator import QueryEmulator
from repro.measure.session import QuerySession
from repro.services.frontend import FrontEndServer
from repro.sim.process import Sleep, spawn
from repro.sim.analytic import TieredSessionManager, TierStats, tier_mode
from repro.sim.replay import (
    ReplayCache,
    ReplayStats,
    SessionReplayManager,
    SubmissionSchedule,
    replay_cache_enabled,
)
from repro.testbed.scenario import Scenario
from repro.testbed.vantage import VantagePoint


@dataclass
class DatasetA:
    """Default-FE campaign results (paper's Datasets A)."""

    sessions: List[QuerySession] = field(default_factory=list)
    #: (vp_name, service) -> (fe_name, rtt_seconds)
    default_fe: Dict[Tuple[str, str], Tuple[str, float]] = \
        field(default_factory=dict)
    #: Session-replay cache accounting, or None when the cache was off.
    replay: Optional[ReplayStats] = None
    #: Tiered-execution accounting, or None when tier was "packet".
    tier: Optional[TierStats] = None
    #: Observability capture (repro.obs), set when tracing is enabled:
    #: canonical serialized spans and the campaign's metric delta.
    trace: Optional[list] = None
    obs_metrics: Optional[obs.MetricsSnapshot] = None

    def for_service(self, service: str) -> List[QuerySession]:
        return [s for s in self.sessions if s.service == service]

    def for_vp(self, vp_name: str, service: Optional[str] = None
               ) -> List[QuerySession]:
        return [s for s in self.sessions
                if s.vp_name == vp_name
                and (service is None or s.service == service)]


@dataclass
class DatasetB:
    """Fixed-FE campaign results (paper's Datasets B) for one service."""

    service: str
    fe_name: str
    sessions: List[QuerySession] = field(default_factory=list)
    #: Session-replay cache accounting, or None when the cache was off.
    replay: Optional[ReplayStats] = None
    #: Tiered-execution accounting, or None when tier was "packet".
    tier: Optional[TierStats] = None
    #: Observability capture (repro.obs), as on :class:`DatasetA`.
    trace: Optional[list] = None
    obs_metrics: Optional[obs.MetricsSnapshot] = None

    def for_vp(self, vp_name: str) -> List[QuerySession]:
        return [s for s in self.sessions if s.vp_name == vp_name]


def _replay_manager(scenario: Scenario, schedule: SubmissionSchedule,
                    replay_cache, store_payload: bool,
                    run_timeout: Optional[float]
                    ) -> Optional[SessionReplayManager]:
    """Resolve a driver's ``replay_cache`` argument into a manager.

    ``None`` follows the ``REPRO_REPLAY_CACHE`` env default, ``False``
    disables the cache, ``True`` forces a fresh per-campaign cache, and
    a :class:`ReplayCache` instance is used as-is (letting successive
    campaigns on the *same scenario* share warmed timelines).
    """
    if replay_cache is False:
        return None
    cache: Optional[ReplayCache] = None
    if isinstance(replay_cache, ReplayCache):
        cache = replay_cache
    elif replay_cache is None and not replay_cache_enabled():
        return None
    return SessionReplayManager(scenario, schedule, cache=cache,
                                store_payload=store_payload,
                                run_timeout=run_timeout)


def _campaign_manager(scenario: Scenario, schedule: SubmissionSchedule,
                      tier: Optional[str], replay_cache,
                      store_payload: bool,
                      run_timeout: Optional[float]):
    """Resolve a driver's executor: tiered, replay-cached, or None.

    ``tier`` follows the ``REPRO_TIER`` env default (see
    :func:`~repro.sim.analytic.manager.tier_mode`); any mode other than
    ``packet`` selects the tiered executor, which subsumes the replay
    cache (its analytic tier already skips the packet engine, and its
    packet tier is the ground-truth referee).
    """
    mode = tier_mode(tier)
    if mode != "packet":
        return TieredSessionManager(scenario, schedule, mode=mode,
                                    store_payload=store_payload,
                                    run_timeout=run_timeout)
    return _replay_manager(scenario, schedule, replay_cache,
                           store_payload, run_timeout)


def _finalize_manager(dataset, manager) -> None:
    """Store the executor's accounting on the dataset it produced."""
    if isinstance(manager, TieredSessionManager):
        dataset.tier = manager.finalize()
    elif manager is not None:
        dataset.replay = manager.finalize()


def run_dataset_a(scenario: Scenario, keywords: Sequence[Keyword], *,
                  repeats: int = 10,
                  interval: float = 10.0,
                  services: Optional[Sequence[str]] = None,
                  vantage_points: Optional[Sequence[VantagePoint]] = None,
                  store_payload: bool = False,
                  run_timeout: Optional[float] = None,
                  replay_cache=None,
                  tier: Optional[str] = None) -> DatasetA:
    """Run the default-FE campaign and return its sessions.

    Each vantage point issues ``repeats`` rounds; in every round it sends
    one query per service (cycling through ``keywords``), then sleeps
    ``interval`` seconds.

    ``replay_cache`` controls the session-replay cache (see
    :mod:`repro.sim.replay` and :func:`_replay_manager`); the default
    follows the ``REPRO_REPLAY_CACHE`` environment variable.  The cache
    changes no observable output, only wall-clock time.

    ``tier`` selects the execution tier (``packet``/``analytic``/
    ``auto``; default from ``REPRO_TIER``).  Modes other than ``packet``
    route admitted sessions through the closed-form analytic model and
    set ``dataset.tier`` (see :mod:`repro.sim.analytic`).
    """
    if not keywords:
        raise ValueError("need at least one keyword")
    services = list(services or scenario.services)
    vps = list(vantage_points or scenario.vantage_points)
    dataset = DatasetA()
    emulators = []
    staggers = _fleet_staggers(scenario, vps, interval)
    manager = _campaign_manager(
        scenario,
        _dataset_a_schedule(scenario, vps, services, repeats, interval,
                            staggers),
        tier, replay_cache, store_payload, run_timeout)
    obs_mark = obs.campaign_begin(scenario)

    for vp in vps:
        emulator = QueryEmulator(scenario, vp, store_payload=store_payload)
        emulators.append(emulator)
        frontends = {}
        for service_name in services:
            frontend, rtt = scenario.connect_default(service_name, vp)
            frontends[service_name] = frontend
            dataset.default_fe[(vp.name, service_name)] = \
                (frontend.node.name, rtt)
        spawn(scenario.sim,
              _vp_loop(scenario, emulator, frontends, keywords,
                       repeats, interval, staggers[vp.name], manager))

    scenario.sim.run(until=run_timeout)
    for emulator in emulators:
        dataset.sessions.extend(emulator.sessions)
    _finalize_manager(dataset, manager)
    obs.campaign_end(obs_mark, "dataset_a", scenario, dataset)
    return dataset


def _dataset_a_schedule(scenario: Scenario, vps: Sequence[VantagePoint],
                        services: Sequence[str], repeats: int,
                        interval: float,
                        staggers: Dict[str, float]) -> SubmissionSchedule:
    """Planned per-FE submission times of a Dataset-A run.

    Replicates :func:`_vp_loop`'s float arithmetic exactly (stagger,
    then repeated ``t + interval``): the replay manager compares these
    times for equality against ``sim.now``.
    """
    schedule = SubmissionSchedule()
    for vp in vps:
        fe_names = [scenario.default_frontend(name, vp).node.name
                    for name in services]
        time = staggers[vp.name] if staggers[vp.name] > 0 else 0.0
        for _ in range(repeats):
            for fe_name in fe_names:
                schedule.add(fe_name, time)
            time = time + interval
    return schedule.freeze()


def _fleet_staggers(scenario: Scenario, vps: Sequence[VantagePoint],
                    interval: float) -> Dict[str, float]:
    """Per-VP start offsets, positioned by index in the *full* fleet.

    Vantage points not in the scenario fleet (possible only with
    hand-built VP lists) are appended after it, preserving the old
    subset-relative behaviour for them.
    """
    fleet_index = {vp.name: index
                   for index, vp in enumerate(scenario.vantage_points)}
    fleet_size = max(1, len(scenario.vantage_points))
    staggers = {}
    extra = len(fleet_index)
    for vp in vps:
        index = fleet_index.get(vp.name)
        if index is None:
            index = extra
            extra += 1
        staggers[vp.name] = (index / fleet_size) * interval
    return staggers


def _vp_loop(scenario: Scenario, emulator: QueryEmulator,
             frontends: Dict[str, FrontEndServer],
             keywords: Sequence[Keyword], repeats: int,
             interval: float, stagger: float,
             manager=None):
    """Per-vantage-point query loop (a simulator process).

    ``manager`` is a :class:`SessionReplayManager`, a
    :class:`TieredSessionManager`, or None (plain submission).
    """
    if stagger > 0:
        yield Sleep(stagger)
    for round_index in range(repeats):
        keyword = keywords[round_index % len(keywords)]
        for service_name, frontend in frontends.items():
            if manager is not None:
                manager.submit(emulator, service_name, frontend, keyword)
            else:
                emulator.submit(service_name, frontend, keyword)
        yield Sleep(interval)


def run_dataset_b(scenario: Scenario, service_name: str,
                  frontend: FrontEndServer, keyword: Keyword, *,
                  repeats: int = 10,
                  interval: float = 10.0,
                  vantage_points: Optional[Sequence[VantagePoint]] = None,
                  store_payload: bool = False,
                  run_timeout: Optional[float] = None,
                  replay_cache=None,
                  tier: Optional[str] = None) -> DatasetB:
    """Run the fixed-FE campaign for one service and return its sessions.

    ``replay_cache`` and ``tier`` work as in :func:`run_dataset_a`.
    """
    vps = list(vantage_points or scenario.vantage_points)
    service = scenario.service(service_name)
    dataset = DatasetB(service=service_name, fe_name=frontend.node.name)
    emulators = []

    staggers = _fleet_staggers(scenario, vps, interval)
    manager = _campaign_manager(
        scenario,
        _dataset_b_schedule(frontend, vps, repeats, interval, staggers),
        tier, replay_cache, store_payload, run_timeout)
    obs_mark = obs.campaign_begin(scenario)
    for vp in vps:
        scenario.link_client_to_frontend(vp, frontend, service)
        emulator = QueryEmulator(scenario, vp, store_payload=store_payload)
        emulators.append(emulator)
        spawn(scenario.sim,
              _fixed_fe_loop(emulator, service_name, frontend, keyword,
                             repeats, interval, staggers[vp.name],
                             manager))

    scenario.sim.run(until=run_timeout)
    for emulator in emulators:
        dataset.sessions.extend(emulator.sessions)
    _finalize_manager(dataset, manager)
    obs.campaign_end(obs_mark, "dataset_b", scenario, dataset)
    return dataset


def _dataset_b_schedule(frontend: FrontEndServer,
                        vps: Sequence[VantagePoint], repeats: int,
                        interval: float,
                        staggers: Dict[str, float]) -> SubmissionSchedule:
    """Planned submission times of a Dataset-B run (one shared FE)."""
    schedule = SubmissionSchedule()
    fe_name = frontend.node.name
    for vp in vps:
        time = staggers[vp.name] if staggers[vp.name] > 0 else 0.0
        for _ in range(repeats):
            schedule.add(fe_name, time)
            time = time + interval
    return schedule.freeze()


def _fixed_fe_loop(emulator: QueryEmulator, service_name: str,
                   frontend: FrontEndServer, keyword: Keyword,
                   repeats: int, interval: float, stagger: float,
                   manager=None):
    if stagger > 0:
        yield Sleep(stagger)
    for _ in range(repeats):
        if manager is not None:
            manager.submit(emulator, service_name, frontend, keyword)
        else:
            emulator.submit(service_name, frontend, keyword)
        yield Sleep(interval)


def run_single_queries(scenario: Scenario, service_name: str,
                       frontend: FrontEndServer,
                       assignments: Iterable[Tuple[VantagePoint, Keyword]],
                       *, spacing: float = 1.0,
                       store_payload: bool = False) -> List[QuerySession]:
    """Issue one query per (vantage point, keyword) pair, spaced in time.

    Used by the FE-caching experiments: "all measurement nodes submit the
    same search query sequentially to a fixed FE server" (spacing > 0
    makes them sequential) and "each node submits a different search
    query".
    """
    service = scenario.service(service_name)
    sessions: List[QuerySession] = []
    # One emulator per distinct vantage point: a VP that appears in
    # several assignments (the cache-lab streams) keeps one query-id
    # counter, so every submission gets a globally unique id and the
    # ground-truth fetch/hit logs stay one record per query.
    emulators: Dict[str, QueryEmulator] = {}
    order: List[QueryEmulator] = []
    for index, (vp, keyword) in enumerate(assignments):
        scenario.link_client_to_frontend(vp, frontend, service)
        emulator = emulators.get(vp.name)
        if emulator is None:
            emulator = QueryEmulator(scenario, vp,
                                     store_payload=store_payload)
            emulators[vp.name] = emulator
            order.append(emulator)
        scenario.sim.schedule(index * spacing, emulator.submit,
                              service_name, frontend, keyword)
    scenario.sim.run()
    for emulator in order:
        sessions.extend(emulator.sessions)
    return sessions
