"""Trace serialization: persist and reload captured query sessions.

A measurement study's raw artifact is its trace archive.  This module
writes :class:`~repro.measure.session.QuerySession` objects (metadata +
packet events, optionally payloads) to a JSON-lines file and reads them
back, so analysis can run long after — and far away from — the capture,
exactly as the paper's tcpdump archives allowed.

Format: one JSON object per line.  ``{"kind": "session", ...}`` carries
session metadata; each following ``{"kind": "pkt", ...}`` line carries
one packet event of that session.  Payload bytes are base64-encoded and
omitted when absent.
"""

from __future__ import annotations

import base64
import json
from typing import IO, Iterable, Iterator, List, Optional

from repro.content.keywords import Keyword
from repro.measure.capture import PacketEvent
from repro.measure.session import QuerySession

FORMAT_VERSION = 1


class TraceFormatError(Exception):
    """Raised when a trace file is malformed or has the wrong version."""


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------
def _session_header(session: QuerySession) -> dict:
    keyword = session.keyword
    return {
        "kind": "session",
        "version": FORMAT_VERSION,
        "query_id": session.query_id,
        "service": session.service,
        "vp_name": session.vp_name,
        "fe_name": session.fe_name,
        "keyword": {
            "text": keyword.text,
            "popularity": keyword.popularity,
            "complexity": keyword.complexity,
            "granularity": keyword.granularity,
            "suggested": keyword.suggested,
        },
        "local_port": session.local_port,
        "started_at": session.started_at,
        "completed_at": session.completed_at,
        "failed": session.failed,
        "response_size": session.response_size,
        "path_rtt": session.path_rtt,
        "n_events": len(session.events),
    }


def _event_record(event: PacketEvent) -> dict:
    record = {
        "kind": "pkt",
        "t": event.time,
        "dir": event.direction,
        "src": event.src, "dst": event.dst,
        "sp": event.sport, "dp": event.dport,
        "wire": event.wire_size,
        "len": event.payload_len,
        "seq": event.seq, "ack": event.ack,
        "fl": ("S" if event.syn else "") + ("F" if event.fin else "")
              + ("A" if event.ack_flag else "")
              + ("R" if event.retransmit else ""),
    }
    if event.payload is not None:
        record["data"] = base64.b64encode(event.payload).decode("ascii")
    return record


def write_sessions(sessions: Iterable[QuerySession],
                   fileobj: IO[str]) -> int:
    """Write sessions as JSON lines; returns the number written."""
    count = 0
    for session in sessions:
        fileobj.write(json.dumps(_session_header(session)) + "\n")
        for event in session.events:
            fileobj.write(json.dumps(_event_record(event)) + "\n")
        count += 1
    return count


def save_sessions(sessions: Iterable[QuerySession], path: str) -> int:
    """Write sessions to ``path``; returns the number written."""
    with open(path, "w", encoding="utf-8") as fileobj:
        return write_sessions(sessions, fileobj)


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------
def _decode_event(record: dict) -> PacketEvent:
    flags = record.get("fl", "")
    payload = record.get("data")
    return PacketEvent(
        time=record["t"],
        direction=record["dir"],
        src=record["src"], dst=record["dst"],
        sport=record["sp"], dport=record["dp"],
        wire_size=record["wire"],
        payload_len=record["len"],
        seq=record["seq"], ack=record["ack"],
        syn="S" in flags, fin="F" in flags,
        ack_flag="A" in flags, retransmit="R" in flags,
        payload=base64.b64decode(payload) if payload is not None
        else None)


def _decode_session(header: dict) -> QuerySession:
    if header.get("version") != FORMAT_VERSION:
        raise TraceFormatError("unsupported trace version %r"
                               % header.get("version"))
    keyword_data = header["keyword"]
    return QuerySession(
        query_id=header["query_id"],
        service=header["service"],
        vp_name=header["vp_name"],
        fe_name=header["fe_name"],
        keyword=Keyword(text=keyword_data["text"],
                        popularity=keyword_data["popularity"],
                        complexity=keyword_data["complexity"],
                        granularity=keyword_data["granularity"],
                        suggested=keyword_data["suggested"]),
        local_port=header["local_port"],
        started_at=header["started_at"],
        completed_at=header["completed_at"],
        failed=header["failed"],
        response_size=header["response_size"],
        path_rtt=header["path_rtt"])


def read_sessions(fileobj: IO[str]) -> Iterator[QuerySession]:
    """Stream sessions back from a JSON-lines trace file."""
    current: Optional[QuerySession] = None
    expected_events = 0
    for line_number, line in enumerate(fileobj, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError("line %d: bad JSON (%s)"
                                   % (line_number, exc)) from exc
        kind = record.get("kind")
        if kind == "session":
            if current is not None:
                _check_complete(current, expected_events)
                yield current
            current = _decode_session(record)
            expected_events = record.get("n_events", 0)
        elif kind == "pkt":
            if current is None:
                raise TraceFormatError(
                    "line %d: packet before any session header"
                    % line_number)
            current.events.append(_decode_event(record))
        else:
            raise TraceFormatError("line %d: unknown record kind %r"
                                   % (line_number, kind))
    if current is not None:
        _check_complete(current, expected_events)
        yield current


def _check_complete(session: QuerySession, expected: int) -> None:
    if len(session.events) != expected:
        raise TraceFormatError(
            "session %s: expected %d events, found %d (truncated file?)"
            % (session.query_id, expected, len(session.events)))


def load_sessions(path: str) -> List[QuerySession]:
    """Read all sessions from ``path``."""
    with open(path, "r", encoding="utf-8") as fileobj:
        return list(read_sessions(fileobj))


# ---------------------------------------------------------------------------
# human-readable rendering
# ---------------------------------------------------------------------------
def render_tcpdump(session: QuerySession,
                   max_events: Optional[int] = None) -> str:
    """Render a session's trace in a tcpdump-like text form.

    Times are shown relative to the session start; ``max_events`` caps
    output (an ellipsis line notes elision).
    """
    lines = ["# session %s  service=%s  vp=%s  fe=%s  keyword=%r"
             % (session.query_id, session.service, session.vp_name,
                session.fe_name, session.keyword.text)]
    events = session.events
    shown = events if max_events is None else events[:max_events]
    for event in shown:
        arrow = "->" if event.direction == "out" else "<-"
        flags = "".join(code for flag, code in
                        ((event.syn, "S"), (event.fin, "F"),
                         (event.ack_flag, "."),
                         (event.retransmit, "R")) if flag) or "-"
        lines.append("%10.6f %s %s:%d %s %s:%d [%s] seq=%d ack=%d "
                     "len=%d"
                     % (event.time - session.started_at,
                        arrow, event.src, event.sport, arrow,
                        event.dst, event.dport, flags,
                        event.seq, event.ack, event.payload_len))
    if max_events is not None and len(events) > max_events:
        lines.append("... (%d more packets)"
                     % (len(events) - max_events))
    return "\n".join(lines)
