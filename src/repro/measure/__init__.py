"""Active measurement: capture, query emulation, campaign drivers."""

from repro.measure.capture import PacketCapture, PacketEvent
from repro.measure.driver import (
    DatasetA,
    DatasetB,
    run_dataset_a,
    run_dataset_b,
    run_single_queries,
)
from repro.measure.emulator import QueryEmulator
from repro.measure.session import QuerySession
from repro.measure.streaming import (
    StreamingCampaignResult,
    StreamingSchedule,
    run_streaming_campaign,
)
from repro.measure.traceio import (
    TraceFormatError,
    load_sessions,
    read_sessions,
    save_sessions,
    write_sessions,
)

__all__ = [
    "DatasetA",
    "DatasetB",
    "PacketCapture",
    "PacketEvent",
    "QueryEmulator",
    "QuerySession",
    "StreamingCampaignResult",
    "StreamingSchedule",
    "TraceFormatError",
    "run_dataset_a",
    "run_dataset_b",
    "run_streaming_campaign",
    "load_sessions",
    "read_sessions",
    "run_single_queries",
    "save_sessions",
    "write_sessions",
]
