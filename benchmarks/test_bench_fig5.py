"""Benchmark: regenerate Figure 5 (Tstatic/Tdynamic/Tdelta vs RTT).

Paper series: per-node medians against RTT for one fixed FE per
service.  Shape targets: Tdelta decreases to zero at ~50-100 ms
(google-like) vs ~100-200 ms (bing-akamai-like); Tdynamic is flat then
linear.
"""

from repro.experiments.fig5 import run_fig5
from repro.experiments.report import render_fig5
from repro.sim import units
from repro.testbed.scenario import Scenario


def test_bench_fig5(benchmark, bench_scale):
    result = benchmark.pedantic(run_fig5, args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_fig5(result))

    thresholds = result.thresholds_ms()
    assert 30 <= thresholds[Scenario.GOOGLE] <= 110
    assert 100 <= thresholds[Scenario.BING] <= 260
    for curves in result.curves.values():
        tdelta = curves.binned("tdelta")
        assert tdelta[0][1] > units.ms(10)
        assert tdelta[-1][1] < units.ms(10)
