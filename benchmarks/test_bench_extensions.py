"""Benchmarks: extension studies beyond the paper's figures.

* RFC 2861 idle-reset ablation — quantifies the warm-connection benefit
  split TCP depends on;
* residential/mobile access profiles — the reviewers' testbed critique;
* keyword-effect correlations — reviewer #2's requested analysis.
"""

from repro.experiments.ablation import run_idle_reset_ablation
from repro.experiments.keyword_effects import (
    render_keyword_effects,
    run_keyword_effects,
)
from repro.experiments.report import render_idle_reset
from repro.experiments.residential import render_residential, run_residential
from repro.sim import units


def test_bench_ablation_idle_reset(benchmark, bench_scale):
    result = benchmark.pedantic(run_idle_reset_ablation,
                                args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_idle_reset(result))
    # Losing the warm window must cost at least one extra FE-BE
    # round-trip worth of fetch time.
    assert result.idle_penalty > units.ms(50)


def test_bench_residential(benchmark, bench_scale):
    result = benchmark.pedantic(run_residential, args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_residential(result))
    assert result.rtts_degrade()
    assert result.placement_relevance_shrinks()
    campus = result.row("campus")
    dsl = result.row("residential-dsl")
    assert campus.fraction_under_20ms > 0.5
    assert dsl.fraction_under_20ms < 0.2  # the reviewers' point


def test_bench_whatif(benchmark, bench_scale):
    from repro.experiments.whatif import render_whatif, run_whatif
    from repro.testbed.scenario import Scenario

    result = benchmark.pedantic(run_whatif, args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_whatif(result))
    bing = result.fitted[Scenario.BING].model
    google = result.fitted[Scenario.GOOGLE].model
    # The fitted fetch times separate the services like Figure 9 does.
    assert bing.tfetch > 3 * google.tfetch
    # The thresholds land in the paper's bands.
    assert 0.03 <= result.advice[Scenario.GOOGLE].threshold_rtt <= 0.11
    assert 0.10 <= result.advice[Scenario.BING].threshold_rtt <= 0.26
    # Bing's population is predominantly fetch-bound.
    assert result.advice[Scenario.BING].fraction_fetch_bound > 0.5


def test_bench_keyword_effects(benchmark, bench_scale):
    result = benchmark.pedantic(run_keyword_effects, args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_keyword_effects(result))
    assert result.word_count_rho > 0.5
    assert result.complexity_rho > 0.5
    assert result.popularity_rho < -0.5
    cheapest, costliest = result.extremes()
    assert costliest.tdynamic_median > 1.5 * cheapest.tdynamic_median


def test_bench_load_sensitivity(benchmark, bench_scale):
    from repro.experiments.load_sensitivity import (
        render_load_sensitivity,
        run_load_sensitivity,
    )

    result = benchmark.pedantic(run_load_sensitivity,
                                args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_load_sensitivity(result))
    # Shared-FE load inflates the probe's Tstatic (the paper's Akamai
    # speculation, exhibited mechanistically).
    assert result.tstatic_inflation() > units.ms(10)
    peaks = [p.peak_concurrency for p in result.points]
    assert peaks == sorted(peaks)
