"""Record the microperf benchmark medians into ``BENCH_microperf.json``.

Runs the three engine/TCP micro-benchmarks through pytest-benchmark,
extracts the median wall-clock per benchmark, and *appends* a labelled
entry to the repo-root ``BENCH_microperf.json`` trajectory file.  Each
PR that touches the hot path should append one entry so the file reads
as a performance history; see ``docs/PERFORMANCE.md`` for how to
interpret it.

Usage (from the repo root)::

    python benchmarks/run_microperf.py --label "my change"
    python benchmarks/run_microperf.py --check 2.0 --dry-run  # CI gate

``--check RATIO`` is a *regression* gate: it fails when any benchmark's
median is more than RATIO times slower than the previous trajectory
entry.  Benchmarks without a previous median (newly added) pass.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_microperf.json")
BENCH_FILE = os.path.join("benchmarks", "test_bench_microperf.py")


def run_benchmarks() -> dict:
    """Run the microperf file; return {benchmark_name: median_ms}."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = os.path.join(tmp, "bench.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO_ROOT, "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        subprocess.run(
            [sys.executable, "-m", "pytest", BENCH_FILE,
             "--benchmark-only", "-q",
             "--benchmark-json=%s" % json_path],
            cwd=REPO_ROOT, env=env, check=True)
        with open(json_path) as handle:
            report = json.load(handle)
    return {bench["name"]: bench["stats"]["median"] * 1000.0
            for bench in report["benchmarks"]}


def provenance() -> dict:
    """Git SHA and date stamps for a trajectory entry.

    Either stamp degrades to ``"unknown"`` (no git, no checkout, …) —
    provenance must never fail a benchmark run.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    try:
        # Wall-clock provenance of the *host* run that produced the
        # entry; nothing inside the simulations reads it.
        date = datetime.date.today().isoformat()  # simlint: ignore[DET001]
    except (OSError, OverflowError):
        date = "unknown"
    return {"git_sha": sha, "date": date}


def load_trajectory() -> dict:
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as handle:
            trajectory = json.load(handle)
        # Every entry carries provenance uniformly: runs recorded
        # before the stamps existed degrade to "unknown", exactly as a
        # stampless host run would.
        for entry in trajectory["runs"]:
            entry.setdefault("git_sha", "unknown")
            entry.setdefault("date", "unknown")
        return trajectory
    return {"benchmark": BENCH_FILE,
            "unit": "milliseconds (median wall-clock)",
            "runs": []}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="unlabeled",
                        help="name for this entry in the trajectory")
    parser.add_argument("--check", type=float, metavar="RATIO",
                        help="regression gate: exit non-zero if any "
                             "benchmark's median is more than RATIO x "
                             "slower than the previous trajectory entry "
                             "(new benchmarks pass); combine with "
                             "--dry-run in CI")
    parser.add_argument("--dry-run", action="store_true",
                        help="print medians without updating the file")
    args = parser.parse_args(argv)

    medians = run_benchmarks()
    trajectory = load_trajectory()
    previous = trajectory["runs"][-1] if trajectory["runs"] else None

    print()
    print("%-42s %12s" % ("benchmark", "median"))
    for name in sorted(medians):
        line = "%-42s %10.4fms" % (name, medians[name])
        if previous and name in previous["medians"]:
            line += "   (%5.2fx vs %s)" % (
                previous["medians"][name] / medians[name],
                previous["label"])
        print(line)

    if args.check is not None:
        if args.check <= 0:
            print("--check: RATIO must be positive")
            return 2
        if previous is None:
            print("--check: no previous entry; nothing to regress from")
        else:
            failures = [
                name for name, median in medians.items()
                if name in previous["medians"]
                and median > previous["medians"][name] * args.check]
            if failures:
                # Full ratio table, not just the offenders' names: when
                # the gate trips you want to see at a glance whether one
                # benchmark regressed or the whole host got slower.
                print("--check %.2f FAILED (slower than %.2fx the "
                      "previous entry %r):"
                      % (args.check, args.check, previous["label"]))
                print("  %-42s %12s %12s %8s" % ("benchmark", "previous",
                                                 "current", "ratio"))
                for name in sorted(medians):
                    before = previous["medians"].get(name)
                    if before is None:
                        print("  %-42s %12s %10.4fms %8s"
                              % (name, "(new)", medians[name], "-"))
                        continue
                    ratio = medians[name] / before
                    print("  %-42s %10.4fms %10.4fms %7.2fx%s"
                          % (name, before, medians[name], ratio,
                             "  <-- FAIL" if name in failures else ""))
                return 1
            print("--check %.2f passed (no benchmark regressed past "
                  "%.2fx the previous medians)" % (args.check, args.check))

    if not args.dry_run:
        entry = {"label": args.label, "medians": medians}
        entry.update(provenance())
        trajectory["runs"].append(entry)
        with open(BASELINE_PATH, "w") as handle:
            json.dump(trajectory, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("appended %r to %s" % (args.label, BASELINE_PATH))
    return 0


if __name__ == "__main__":
    sys.exit(main())
