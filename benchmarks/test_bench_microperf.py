"""Micro-benchmarks of the simulation substrate itself.

Unlike the figure benchmarks (one-shot experiment regenerations), these
measure the simulator's raw performance across repeated rounds — useful
for catching performance regressions in the engine, TCP stack, and the
end-to-end query path.
"""

from repro.content.keywords import Keyword
from repro.measure.driver import run_dataset_a
from repro.measure.emulator import QueryEmulator
from repro.net.address import Endpoint
from repro.sim import units
from repro.sim.engine import Simulator
from repro.testbed.scenario import Scenario, ScenarioConfig


def test_bench_engine_event_throughput(benchmark):
    """Raw event-queue throughput (schedule + dispatch)."""

    def run_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    executed = benchmark(run_events)
    assert executed == 20_000


def test_bench_tcp_bulk_transfer(benchmark):
    """Simulated 1 MB TCP transfer, wall-clock cost."""
    from repro.net.topology import Topology
    from repro.sim.randomness import RandomStreams
    from repro.tcp.connection import TcpApp
    from repro.tcp.host import TcpHost

    payload = bytes(bytearray(i % 251 for i in range(1_000_000)))

    class Responder(TcpApp):
        def on_data(self, conn, data):
            conn.send(payload)
            conn.close()

    class Sink(TcpApp):
        def __init__(self):
            self.received = 0

        def on_established(self, conn):
            conn.send(b"G")

        def on_data(self, conn, data):
            self.received += len(data)

    def transfer():
        sim = Simulator()
        topo = Topology(sim, RandomStreams(0))
        topo.add_node("client")
        topo.add_node("server")
        topo.connect("client", "server", delay=units.ms(20),
                     bandwidth=units.mbps(500))
        topo.build_routes()
        client_host = TcpHost(sim, topo.node("client"))
        server_host = TcpHost(sim, topo.node("server"))
        server_host.listen(80, Responder)
        sink = Sink()
        client_host.connect(Endpoint("server", 80), sink)
        sim.run()
        return sink.received

    received = benchmark(transfer)
    assert received == len(payload)


def test_bench_single_query_end_to_end(benchmark):
    """One full search query through client -> FE -> BE -> client."""
    keyword = Keyword(text="micro benchmark query", popularity=0.5,
                      complexity=0.5)

    def query():
        scenario = Scenario(ScenarioConfig(seed=50, vantage_count=2))
        emulator = QueryEmulator(scenario, scenario.vantage_points[0])
        session = emulator.submit_default(Scenario.GOOGLE, keyword)
        scenario.sim.run()
        return session

    session = benchmark(query)
    assert session.complete


def _dataset_a_campaign(replay_cache, tier="packet"):
    """A small Dataset-A campaign shaped for session-timeline reuse.

    Deterministic keyed services and a repeat/interval combination that
    keeps most rounds inside one start-time binade, so the replay cache
    (when enabled) converts the bulk of the 120 sessions into hits.
    The two benchmarks below run the identical campaign with the cache
    off and on; their ratio is the cache's campaign-level speedup.  The
    analytic benchmark runs it once more with ``tier="analytic"``; its
    ratio against the simulated run is the closed-form model's speedup.
    """
    scenario = Scenario(ScenarioConfig(seed=7, vantage_count=3,
                                       keyed_service_draws=True,
                                       deterministic_services=True))
    keyword = Keyword(text="campaign benchmark query", popularity=0.8,
                      complexity=0.3)
    return run_dataset_a(scenario, [keyword], repeats=40, interval=3.0,
                         services=[Scenario.GOOGLE],
                         replay_cache=replay_cache, tier=tier)


def test_bench_dataset_a_campaign_simulated(benchmark):
    """Dataset-A campaign wall-clock with the replay cache OFF."""
    dataset = benchmark(lambda: _dataset_a_campaign(False))
    assert len(dataset.sessions) == 120
    assert all(s.complete for s in dataset.sessions)
    assert dataset.replay is None


def test_bench_dataset_a_campaign_replay_cached(benchmark):
    """The same campaign with the replay cache ON (>= 1.5x target)."""
    dataset = benchmark(lambda: _dataset_a_campaign(True))
    assert len(dataset.sessions) == 120
    assert all(s.complete for s in dataset.sessions)
    assert dataset.replay is not None
    assert dataset.replay.hits > len(dataset.sessions) // 2


def test_bench_dataset_a_campaign_analytic(benchmark):
    """The same campaign on the analytic tier (>= 10x target).

    ``tier="analytic"`` serves every admitted session from the closed-
    form model (repro.sim.analytic) without packet simulation; only the
    time-origin session is simulated.  Its median against
    ``test_bench_dataset_a_campaign_simulated`` is the analytic tier's
    campaign-level speedup; the model's accuracy is asserted separately
    by the divergence-gate tests and the auto-tier smoke run in CI.
    """
    dataset = benchmark(lambda: _dataset_a_campaign(False, "analytic"))
    assert len(dataset.sessions) == 120
    assert all(s.complete for s in dataset.sessions)
    assert dataset.replay is None
    assert dataset.tier is not None
    assert dataset.tier.analytic > 100
    assert dataset.tier.divergences == 0


def test_bench_dataset_a_campaign_finite_cache(benchmark):
    """The Dataset-A campaign against a finite (evicting) FE cache.

    Same shape as ``test_bench_dataset_a_campaign_simulated`` but with
    a 2-object LRU static cache and a keyword rotation that re-references
    one hot keyword between two colder ones, so the rounds exercise the
    whole lookup/evict/fill path — hits, evictions, and full-page
    origin fetches.  Its ratio against the simulated baseline is the
    cache subsystem's campaign-level overhead (plus the extra
    origin-fetch traffic it induces).
    """
    from repro.cache import CacheHierarchySpec, CacheSpec

    distinct = [Keyword(text="campaign cache query %d" % index,
                        popularity=0.8, complexity=0.3)
                for index in range(3)]
    # hot, cold, hot, cold: the hot keyword survives LRU, the cold
    # pair keeps displacing each other -> hits AND evictions.
    keywords = [distinct[0], distinct[1], distinct[0], distinct[2]]

    def campaign():
        scenario = Scenario(ScenarioConfig(
            seed=7, vantage_count=3, keyed_service_draws=True,
            deterministic_services=True,
            fe_cache=CacheHierarchySpec(
                static=CacheSpec("lru", capacity_bytes=2 * 4300))))
        return scenario, run_dataset_a(
            scenario, keywords, repeats=40, interval=3.0,
            services=[Scenario.GOOGLE])

    scenario, dataset = benchmark(campaign)
    assert len(dataset.sessions) == 120
    assert all(s.complete for s in dataset.sessions)
    frontends = scenario.service(Scenario.GOOGLE).frontends
    fetches = sum(fe.static_cache.origin_fetches for fe in frontends)
    hits = sum(fe.static_cache.levels[0].hits for fe in frontends)
    assert fetches > 0 and hits > 0


def test_bench_streaming_campaign(benchmark):
    """A small open-loop streaming campaign through the folding runner.

    600 Zipf+Poisson events on the analytic tier — the streaming
    analogue of the Dataset-A campaign benchmarks.  Tracks the
    per-event cost of the bounded-memory path (event feed, sliding
    schedule, session folding, sketch updates); the memory-flatness
    property itself is asserted by
    ``benchmarks/test_bench_streaming_memory.py``.
    """
    from repro.measure.streaming import run_streaming_campaign
    from repro.workload import OpenLoopWorkload, WorkloadSpec

    config = ScenarioConfig(seed=7, vantage_count=6,
                            keyed_service_draws=True,
                            deterministic_services=True)
    spec = WorkloadSpec(seed=7, users=200, duration=600.0,
                        session_rate=2.0, keyword_count=128,
                        max_events=600, services=(Scenario.GOOGLE,))

    def campaign():
        scenario = Scenario(config)
        workload = OpenLoopWorkload(
            spec, [vp.name for vp in scenario.vantage_points])
        return run_streaming_campaign(scenario, workload,
                                      tier="analytic")

    result = benchmark(campaign)
    assert result.events == 600
    assert result.sessions == 600
    assert result.failures == 0
    assert result.tier is not None and result.tier.analytic > 0
    assert result.sketches["duration/%s" % Scenario.GOOGLE].count == 600


def test_bench_dataset_a_campaign_traced(benchmark):
    """The cache-off campaign with observability (repro.obs) ENABLED.

    Pairs with ``test_bench_dataset_a_campaign_simulated`` (same
    campaign, tracing off): their ratio is the full cost of tracing —
    the guarded hot-path counters plus the post-hoc span build and
    campaign metrics.  The disabled cost is separately bounded by the
    engine/TCP benchmarks above staying flat across PRs.
    """
    from repro import obs

    def traced():
        obs.reset()
        dataset = _dataset_a_campaign(False)
        return dataset

    obs.enable()
    try:
        dataset = benchmark(traced)
    finally:
        obs.disable()
        obs.reset()
    assert len(dataset.sessions) == 120
    assert dataset.trace is not None and len(dataset.trace) == 120
    assert dataset.obs_metrics.counters["fe.requests"] == 120


def _lint_sim_tree(cache_file):
    """One simlint run over ``src/repro/sim`` with an explicit cache."""
    import os

    from repro.lint import LintConfig, LintRunner

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    runner = LintRunner(LintConfig(cache=str(cache_file)))
    findings = runner.run_paths([os.path.join(root, "src", "repro", "sim")])
    return runner, [f for f in findings if f.blocking]


def test_bench_lint_cold(benchmark, tmp_path):
    """simlint cold run (empty cache) over the simulation core.

    Pairs with ``test_bench_lint_warm``: their ratio is what the
    incremental cache buys on an unchanged tree — facts extraction and
    the per-file walks skipped, with only the project pass (taint,
    simtype, simflow fixpoints) re-run over restored facts.
    """
    cache = tmp_path / "simlint-cache.json"

    def cold():
        if cache.exists():
            cache.unlink()
        return _lint_sim_tree(cache)

    runner, blocking = benchmark(cold)
    assert blocking == []
    assert runner.files_analyzed == runner.files_scanned > 0
    assert runner.files_from_cache == 0


def test_bench_lint_warm(benchmark, tmp_path):
    """simlint warm run (every file restored from the cache)."""
    cache = tmp_path / "simlint-cache.json"
    _lint_sim_tree(cache)  # populate

    runner, blocking = benchmark(lambda: _lint_sim_tree(cache))
    assert blocking == []
    assert runner.files_from_cache == runner.files_scanned > 0
    assert runner.files_analyzed == 0
