"""Benchmark: regenerate Figure 9 (fetch-time factoring).

Paper result: regressing low-RTT Tdynamic on FE-BE distance gives an
intercept of ~260 ms (Bing) vs ~34 ms (Google) — the back-end
computation times — with similar per-mile slopes (~0.08-0.099 ms/mile).
"""

from repro.experiments.fig9 import run_fig9
from repro.experiments.report import render_fig9
from repro.testbed.scenario import Scenario


def test_bench_fig9(benchmark, bench_scale):
    result = benchmark.pedantic(run_fig9, args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_fig9(result))

    bing = result.panels[Scenario.BING]
    google = result.panels[Scenario.GOOGLE]
    assert 180 <= bing.intercept_ms <= 340       # paper: ~260 ms
    assert 20 <= google.intercept_ms <= 60       # paper: ~34 ms
    assert 4 <= result.intercept_ratio() <= 14   # paper: ~7.6x
    for panel in result.panels.values():
        assert 0.02 < panel.slope_ms_per_mile < 0.2
