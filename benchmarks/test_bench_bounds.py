"""Benchmark: Section-2 model validation (Eq. 1).

``Tdelta <= Tfetch <= Tdynamic`` checked against the simulator's
ground-truth fetch times, plus the accuracy of the paper's Section-5
proxy (low-RTT Tdynamic ~ Tfetch).
"""

from repro.experiments.report import render_validation
from repro.experiments.validation import run_validation
from repro.sim import units


def test_bench_bounds(benchmark, bench_scale):
    result = benchmark.pedantic(run_validation, args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_validation(result))

    assert result.bounds.both_fraction == 1.0
    assert result.proxy_error_below_rtt(units.ms(40)) < 0.10
