"""Benchmarks: regenerate Figures 6, 7 and 8 (one Dataset-A campaign).

* Figure 6 — RTT CDFs to the default FEs (Bing/Akamai closer).
* Figure 7 — Tstatic/Tdynamic scatter (Bing slower & more variable
  despite closer FEs).
* Figure 8 — per-node overall-delay box plots.
"""

import pytest

from repro.experiments.dataset_a import (
    run_dataset_a_experiment,
    run_fig6,
    run_fig7,
    run_fig8,
)
from repro.experiments.report import render_fig6, render_fig7, render_fig8
from repro.testbed.scenario import Scenario


@pytest.fixture(scope="module")
def campaign(bench_scale, bench_shards):
    return run_dataset_a_experiment(bench_scale, shards=bench_shards)


def test_bench_fig6(benchmark, campaign):
    result = benchmark.pedantic(run_fig6, kwargs={"experiment": campaign},
                                iterations=1, rounds=1)
    print()
    print(render_fig6(result))

    assert result.under_20ms[Scenario.BING] > \
        result.under_20ms[Scenario.GOOGLE]
    assert result.under_20ms[Scenario.BING] >= 0.6


def test_bench_fig7(benchmark, campaign):
    result = benchmark.pedantic(run_fig7, kwargs={"experiment": campaign},
                                iterations=1, rounds=1)
    print()
    print(render_fig7(result))

    assert result.comparison.closer_frontends() == Scenario.BING
    assert result.comparison.faster_overall() == Scenario.GOOGLE
    assert result.comparison.paradox_present


def test_bench_fig8(benchmark, campaign):
    result = benchmark.pedantic(run_fig8, kwargs={"experiment": campaign},
                                iterations=1, rounds=1)
    print()
    print(render_fig8(result))

    assert result.comparison.more_variable() == Scenario.BING
