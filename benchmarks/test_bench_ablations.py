"""Benchmarks: ablations of the design choices DESIGN.md calls out.

1. split TCP vs direct-to-back-end;
2. FE static cache on/off;
3. FE placement density sweep (the placement/fetch trade-off);
4. last-hop loss sweep (split TCP's growing advantage under loss).
"""

from repro.experiments.ablation import (
    run_cache_ablation,
    run_loss_ablation,
    run_placement_ablation,
    run_split_tcp_ablation,
)
from repro.experiments.report import (
    render_cache_ablation,
    render_loss,
    render_placement,
    render_split_tcp,
)
from repro.sim import units


def test_bench_ablation_split_tcp(benchmark, bench_scale):
    result = benchmark.pedantic(run_split_tcp_ablation,
                                args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_split_tcp(result))
    assert result.speedup > 1.15


def test_bench_ablation_cache(benchmark, bench_scale):
    result = benchmark.pedantic(run_cache_ablation, args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_cache_ablation(result))
    assert result.ttfb_improvement > units.ms(100)


def test_bench_ablation_placement(benchmark, bench_scale):
    result = benchmark.pedantic(run_placement_ablation,
                                args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_placement(result))
    assert result.points[0].median_rtt > result.points[-1].median_rtt
    assert result.overall_gain() < units.ms(120)


def test_bench_ablation_loss(benchmark, bench_scale):
    result = benchmark.pedantic(run_loss_ablation, args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_loss(result))
    assert result.advantage_grows_with_loss()
