"""Benchmark: Section-6 "search as you type".

Every keystroke triggers a separate query on a new connection; each
still fits the basic model (bounds hold), and correlated follow-up
queries do not get slower.
"""

from repro.experiments.interactive import run_interactive
from repro.experiments.report import render_interactive
from repro.sim import units


def test_bench_interactive(benchmark, bench_scale):
    result = benchmark.pedantic(run_interactive, args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_interactive(result))

    assert result.distinct_connections() == result.queries
    assert result.bounds.both_fraction == 1.0
    assert result.tdynamic_trend() <= units.ms(10)
