"""Benchmark: regenerate Figure 3 (keyword-type effect).

Paper series: Tstatic and Tdynamic moving medians for four keyword
types against one Bing front-end.  Shape target: Tdynamic separates by
keyword type, Tstatic does not.
"""

from repro.experiments.fig3 import run_fig3
from repro.experiments.report import render_fig3
from repro.sim import units


def test_bench_fig3(benchmark, bench_scale):
    result = benchmark.pedantic(run_fig3, args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_fig3(result))

    dynamic = result.tdynamic_medians()
    static = result.tstatic_medians()
    assert max(dynamic.values()) - min(dynamic.values()) > units.ms(100)
    assert max(static.values()) - min(static.values()) < units.ms(30)
    assert result.separation_ratio() > 5
