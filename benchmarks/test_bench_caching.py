"""Benchmark: the Section-3 "do FEs cache search results?" experiment.

Paper conclusion: they do not.  The benchmark also runs the
counterfactual (caching FEs) to show the methodology *would* have
detected caching had it existed — a positive control.
"""

from repro.experiments.caching import run_caching_experiment
from repro.experiments.report import render_caching


def test_bench_caching_negative(benchmark, bench_scale):
    result = benchmark.pedantic(run_caching_experiment,
                                args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_caching(result))
    assert not result.detection.caching_detected
    assert result.detector_correct


def test_bench_caching_counterfactual(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_caching_experiment, args=(bench_scale,),
        kwargs={"fe_caches_results": True}, iterations=1, rounds=1)
    print()
    print(render_caching(result))
    assert result.detection.caching_detected
    assert result.detector_correct
