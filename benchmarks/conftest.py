"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's figures (or a named
ablation) at a reduced-but-shape-preserving scale, asserts the paper's
qualitative result, and prints the rows/series the figure reports.

Run with::

    pytest benchmarks/ --benchmark-only

Scale can be raised toward the paper's sample sizes via the
``REPRO_BENCH_SCALE`` environment variable (``tiny`` | ``small`` |
``paper``), and campaign benchmarks that support sharding split their
simulation across ``REPRO_BENCH_SHARDS`` worker processes (default 1,
i.e. serial; results are identical either way — see
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentScale

_SCALES = {
    "tiny": ExperimentScale.tiny,
    "small": ExperimentScale.small,
    "paper": ExperimentScale.paper,
}


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """The experiment scale benchmarks run at (env-selectable)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    try:
        factory = _SCALES[name]
    except KeyError:
        raise RuntimeError("REPRO_BENCH_SCALE must be one of %s"
                           % sorted(_SCALES)) from None
    return factory(seed=1)


@pytest.fixture(scope="session")
def bench_shards() -> int:
    """Campaign shard count (env-selectable, default serial)."""
    shards = int(os.environ.get("REPRO_BENCH_SHARDS", "1"))
    if shards < 1:
        raise RuntimeError("REPRO_BENCH_SHARDS must be >= 1")
    return shards
