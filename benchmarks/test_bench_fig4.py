"""Benchmark: regenerate Figure 4 (packet-event timelines).

Paper series: per-client event timelines at five RTTs; the
static-to-dynamic gap shrinks with RTT until the deliveries coalesce.
"""

from repro.experiments.fig4 import run_fig4
from repro.experiments.report import render_fig4
from repro.sim import units


def test_bench_fig4(benchmark, bench_scale):
    result = benchmark.pedantic(run_fig4, args=(bench_scale,),
                                iterations=1, rounds=1)
    print()
    print(render_fig4(result))

    assert result.gap_shrinks_with_rtt()
    assert result.rows[0].gap > units.ms(100)   # separated at small RTT
    assert result.rows[-1].merged               # lumped at large RTT
