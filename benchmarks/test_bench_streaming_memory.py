"""Peak-memory flatness of the streaming campaign runner.

The load-bearing claim of :mod:`repro.measure.streaming` is that peak
memory is set by the number of sessions *in flight* (arrival rate x
session length), not by how many events the campaign processes.  This
benchmark runs the same Zipf+Poisson workload at 10k and 100k events —
with the duration scaled so the in-flight population stays constant —
and asserts the traced Python heap peak stays flat.

This file is intentionally separate from ``test_bench_microperf.py``
(which CI runs on every push): the 100k-event leg takes minutes under
``tracemalloc``.  Run it explicitly::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_streaming_memory.py -q

``REPRO_BENCH_STREAM_EVENTS`` scales the large leg down (e.g. ``20000``)
for a quick local check; the recorded reference numbers are in
``docs/PERFORMANCE.md``.
"""

import os
import tracemalloc

from repro.measure.streaming import run_streaming_campaign
from repro.testbed.scenario import Scenario, ScenarioConfig
from repro.workload import OpenLoopWorkload, WorkloadSpec

CONFIG = ScenarioConfig(seed=7, vantage_count=12,
                        keyed_service_draws=True,
                        deterministic_services=True)

#: Aggregate session arrival rate; duration scales as events/RATE/QPS
#: so the expected in-flight population is event-count-independent.
RATE = 2.0  # simlint: unit[1/s]

SMALL_EVENTS = 10_000
LARGE_EVENTS = int(os.environ.get("REPRO_BENCH_STREAM_EVENTS", 100_000))

#: Allowed peak-heap growth for 10x the events.  Measured ratio on the
#: reference host: 1.22 (52.4 MB -> 63.8 MB); see docs/PERFORMANCE.md.
FLATNESS_BOUND = 1.6


def _traced_peak(events: int):
    """(result, peak_heap_bytes) for an `events`-long streaming run."""
    scenario = Scenario(CONFIG)
    spec = WorkloadSpec(seed=7, users=500, duration=events / (2 * RATE),
                        session_rate=RATE, keyword_count=128,
                        max_events=events,
                        services=(Scenario.GOOGLE,))
    workload = OpenLoopWorkload(
        spec, [vp.name for vp in scenario.vantage_points])
    tracemalloc.start()
    try:
        result = run_streaming_campaign(scenario, workload,
                                        tier="analytic")
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def test_streaming_peak_memory_is_flat_in_event_count():
    small_result, small_peak = _traced_peak(SMALL_EVENTS)
    large_result, large_peak = _traced_peak(LARGE_EVENTS)

    assert small_result.events == SMALL_EVENTS
    assert large_result.events == LARGE_EVENTS
    assert small_result.sessions + small_result.truncated \
        >= SMALL_EVENTS * 0.9
    assert large_result.failures == 0

    ratio = large_peak / small_peak
    print("peak heap: %d events -> %.1f MB, %d events -> %.1f MB "
          "(ratio %.3f)" % (SMALL_EVENTS, small_peak / 1e6,
                            LARGE_EVENTS, large_peak / 1e6, ratio))
    assert ratio < FLATNESS_BOUND, (
        "peak heap grew %.2fx for %dx the events — the streaming "
        "runner is retaining per-event state"
        % (ratio, LARGE_EVENTS // SMALL_EVENTS))
