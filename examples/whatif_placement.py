#!/usr/bin/env python
"""What-if placement analysis from measured traces.

The paper's closing motivation: use the inference framework to "guide
... better content placement and delivery strategies".  This example
measures both services from the testbed, fits the Section-2 model to
each, and answers the operator questions:

* where is the placement threshold?
* what would a client gain if the FE moved closer?
* what would it gain from a 2x faster back end?

Run::

    python examples/whatif_placement.py
"""

from repro.content.keywords import Keyword
from repro.core.metrics import extract_all_calibrated
from repro.core.whatif import advise_placement, fit_model
from repro.experiments.common import ExperimentScale, calibrate_service
from repro.measure.driver import run_dataset_b
from repro.sim import units
from repro.testbed.scenario import Scenario, ScenarioConfig


def analyse(service_name: str) -> None:
    scenario = Scenario(ScenarioConfig(seed=19, vantage_count=24))
    service = scenario.service(service_name)
    frontend = service.frontends[0]
    calibration = calibrate_service(scenario, service_name, [frontend])
    dataset = run_dataset_b(
        scenario, service_name, frontend,
        Keyword(text="what if probe", popularity=0.5, complexity=0.5),
        repeats=5, interval=1.0)
    metrics = extract_all_calibrated(dataset.sessions, calibration)

    fitted = fit_model(metrics)
    advice = advise_placement(metrics)
    model = fitted.model

    print("[%s] fitted from %d queries against %s"
          % (service_name, fitted.samples, frontend.node.name))
    print("  model: fe_delay=%.1fms, Tfetch=%.1fms, k=%d windows"
          % (units.seconds_to_ms(model.fe_delay),
             units.seconds_to_ms(model.tfetch), model.static_windows))
    print("  placement threshold: %.0f ms RTT"
          % units.seconds_to_ms(advice.threshold_rtt))
    for rtt_ms in (10, 50, 150, 250):
        rtt = units.ms(rtt_ms)
        print("  client @ %3d ms RTT: Tdynamic=%6.1f ms, %s-bound; "
              "move-FE-20ms-closer gains %5.1f ms; 2x faster back end "
              "gains %5.1f ms"
              % (rtt_ms,
                 units.seconds_to_ms(fitted.predicted_tdynamic(rtt)),
                 fitted.dominant_factor(rtt),
                 units.seconds_to_ms(fitted.placement_gain(
                     rtt, max(0.0, rtt - units.ms(20)))),
                 units.seconds_to_ms(fitted.faster_backend_gain(
                     rtt, tproc_speedup=2.0))))
    print("  advice: %s" % advice.recommendation)
    print()


def main() -> None:
    for service_name in (Scenario.GOOGLE, Scenario.BING):
        analyse(service_name)


if __name__ == "__main__":
    main()
