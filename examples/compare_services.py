#!/usr/bin/env python
"""Compare the two service architectures (the paper's Section 4.2).

Runs a Dataset-A campaign — every vantage point querying its default
front-end of both services — and prints the comparison the paper draws:
the CDN-fronted service has *closer* front-ends (Figure 6) yet delivers
*slower and more variable* responses (Figures 7 and 8), because the
FE-BE fetch time and server load dominate.

Run::

    python examples/compare_services.py [--scale tiny|small|paper]
"""

import argparse

from repro.experiments.common import ExperimentScale
from repro.experiments.dataset_a import (
    run_dataset_a_experiment,
    run_fig6,
    run_fig7,
    run_fig8,
)
from repro.experiments.report import render_fig6, render_fig7, render_fig8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "paper"),
                        help="campaign size (default: tiny)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    scale = getattr(ExperimentScale, args.scale)(seed=args.seed)

    print("Running Dataset-A campaign (%d nodes x %d rounds x 2 services)"
          % (scale.vantage_count, scale.repeats))
    experiment = run_dataset_a_experiment(scale)

    print()
    print(render_fig6(run_fig6(experiment=experiment)))
    print()
    print(render_fig7(run_fig7(experiment=experiment)))
    print()
    print(render_fig8(run_fig8(experiment=experiment)))

    comparison = experiment.comparison()
    print()
    print("Conclusion (paper Sec. 4.2): %s has the closer front-ends, "
          "but %s delivers faster — placing FE servers closer to users "
          "is not sufficient; the FE-BE fetch time dominates."
          % (comparison.closer_frontends(), comparison.faster_overall()))


if __name__ == "__main__":
    main()
