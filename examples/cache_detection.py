#!/usr/bin/env python
"""Do front-end servers cache search results?  (Paper Section 3.)

Reproduces the paper's two-condition experiment — every node submitting
the same keyword versus distinct keywords against a fixed FE — and runs
the Tdynamic-distribution comparison.  Then repeats it against a
*counterfactual* deployment whose FEs do cache results, showing the
methodology detects caching when it exists.

Run::

    python examples/cache_detection.py
"""

from repro.experiments.caching import run_caching_experiment
from repro.experiments.common import ExperimentScale
from repro.experiments.report import render_caching


def main() -> None:
    scale = ExperimentScale.tiny(seed=3)

    print("=== Real-world-like deployment (FEs relay every query) ===")
    result = run_caching_experiment(scale)
    print(render_caching(result))

    print()
    print("=== Counterfactual deployment (FEs cache dynamic results) ===")
    counterfactual = run_caching_experiment(scale, fe_caches_results=True)
    print(render_caching(counterfactual))

    print()
    print("The paper concluded FE servers do not cache search results —")
    print("'not too surprising, as most search engines attempt to")
    print("personalize search results for individual users.'")


if __name__ == "__main__":
    main()
