#!/usr/bin/env python
"""The paper's headline trade-off: FE placement vs fetch time.

Two demonstrations:

1. **The RTT threshold** (Figure 5 / Section 4.1): sweep a client's RTT
   to a fixed front-end and watch Tdelta shrink to zero — beyond the
   threshold, moving the FE closer no longer improves Tdynamic, which is
   pinned at the FE-BE fetch time.

2. **The placement ablation**: sweep the CDN's footprint density; RTT
   to the default FE improves dramatically, the user-perceived response
   time barely moves.

Run::

    python examples/fe_placement_tradeoff.py
"""

from repro.analysis.boundary import BoundaryCalibration
from repro.content.keywords import Keyword
from repro.core.metrics import extract_metrics
from repro.core.threshold import estimate_tdelta_threshold
from repro.experiments.ablation import run_placement_ablation
from repro.experiments.common import CALIBRATION_KEYWORDS, ExperimentScale
from repro.experiments.report import render_placement
from repro.measure.emulator import QueryEmulator
from repro.sim import units
from repro.testbed.scenario import Scenario, ScenarioConfig
from repro.testbed.sites import METROS
from repro.testbed.vantage import VantagePoint


def rtt_sweep() -> None:
    """One client at many controlled RTTs against one Bing FE."""
    scenario = Scenario(ScenarioConfig(seed=7, vantage_count=4))
    service = scenario.service(Scenario.BING)
    frontend = service.frontends[0]
    keyword = Keyword(text="placement tradeoff probe", popularity=0.5,
                      complexity=0.5)

    rtts_ms = [5, 20, 40, 60, 80, 100, 120, 140, 170, 200, 240]
    sessions = []
    slot = 0.0
    for index, rtt_ms in enumerate(rtts_ms):
        vp = VantagePoint(name="sweep-%03d" % index, metro=METROS[0],
                          location=frontend.location,
                          access_delay=units.ms(rtt_ms) / 2.0,
                          peering_penalty=0.0)
        scenario.add_vantage_point(vp)
        scenario.link_client_to_frontend(vp, frontend, service)
        emulator = QueryEmulator(scenario, vp, store_payload=True)
        for repeat in range(5):
            scenario.sim.call_at(
                slot, lambda e=emulator, r=rtt_ms: sessions.append(
                    (r, e.submit(Scenario.BING, frontend, keyword))))
            slot += 4.0
        if index == 0:
            for calibration_keyword in CALIBRATION_KEYWORDS[:2]:
                scenario.sim.call_at(
                    slot, lambda e=emulator, k=calibration_keyword:
                    sessions.append((None, e.submit(Scenario.BING,
                                                    frontend, k))))
                slot += 4.0
    scenario.sim.run()

    calibration = BoundaryCalibration.from_sessions(
        [s for _, s in sessions])
    boundary = calibration.boundary_for(sessions[0][1])

    print("RTT sweep against %s:" % frontend.node.name)
    print("  %-10s %12s %12s %12s" % ("RTT(ms)", "Tstatic", "Tdynamic",
                                      "Tdelta"))
    rtt_values, tdelta_values = [], []
    for rtt_ms in rtts_ms:
        metrics = [extract_metrics(s, boundary)
                   for r, s in sessions if r == rtt_ms and s.complete]
        metrics.sort(key=lambda m: m.tdynamic)
        mid = metrics[len(metrics) // 2]
        print("  %-10d %12.1f %12.1f %12.1f"
              % (rtt_ms, units.seconds_to_ms(mid.tstatic),
                 units.seconds_to_ms(mid.tdynamic),
                 units.seconds_to_ms(mid.tdelta)))
        for m in metrics:
            rtt_values.append(m.rtt)
            tdelta_values.append(m.tdelta)

    estimate = estimate_tdelta_threshold(rtt_values, tdelta_values)
    print("  -> estimated RTT threshold: ~%.0f ms  (below it, Tdynamic "
          "is pinned at Tfetch; above it, RTT dominates)"
          % units.seconds_to_ms(estimate.threshold_rtt))


def placement_sweep() -> None:
    result = run_placement_ablation(ExperimentScale.tiny(seed=7))
    print()
    print(render_placement(result))
    print("  -> a %.0fx RTT improvement bought only %.0f ms of overall "
          "delay: optimizing the FE-BE fetch time matters more."
          % (result.points[0].median_rtt
             / max(1e-9, result.points[-1].median_rtt),
             units.seconds_to_ms(result.overall_gain())))


if __name__ == "__main__":
    rtt_sweep()
    placement_sweep()
