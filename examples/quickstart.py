#!/usr/bin/env python
"""Quickstart: one search query, end to end, with the paper's metrics.

Builds the simulated measurement universe (two services, PlanetLab-style
vantage points), issues a single query from one vantage point to its
default front-end server, captures the packet trace, runs the content
analysis to find the static/dynamic boundary, and prints the paper's
timeline (tb, t1 ... te) and derived metrics.

Run::

    python examples/quickstart.py
"""

from repro.analysis.boundary import BoundaryCalibration
from repro.content.keywords import Keyword
from repro.core.metrics import extract_metrics
from repro.measure.emulator import QueryEmulator
from repro.sim import units
from repro.testbed.scenario import Scenario, ScenarioConfig


def main() -> None:
    # A small universe: 20 vantage points, both service deployments.
    scenario = Scenario(ScenarioConfig(seed=42, vantage_count=20))
    vp = scenario.vantage_points[0]
    print("Vantage point: %s (metro: %s)" % (vp.name, vp.metro.name))

    # The emulator plays the role of the paper's in-house search box.
    emulator = QueryEmulator(scenario, vp, store_payload=True)

    # Issue three queries: two extra keywords make the content analysis
    # (static/dynamic boundary detection) possible.
    keywords = [
        Keyword(text="dynamic content distribution", popularity=0.4,
                complexity=0.4),
        Keyword(text="front end servers", popularity=0.4, complexity=0.4),
        Keyword(text="split tcp performance", popularity=0.4,
                complexity=0.4),
    ]
    sessions = [emulator.submit_default(Scenario.GOOGLE, keyword)
                for keyword in keywords]
    scenario.sim.run()

    session = sessions[0]
    print("Queried %r against %s" % (session.keyword.text, session.fe_name))
    print("Response: %d bytes in %.1f ms over %d packets"
          % (session.response_size,
             units.seconds_to_ms(session.duration),
             len(session.events)))

    # Content analysis: where does the dynamic portion begin?
    calibration = BoundaryCalibration.from_sessions(sessions)
    boundary = calibration.boundary_for(session)
    print("Static portion: %d bytes (boundary at stream offset %d)"
          % (calibration.static_size, boundary.dynamic_start))

    # The paper's timeline and metrics.
    metrics = extract_metrics(session, boundary)
    timeline = metrics.timeline
    print()
    print("Packet-level timeline (ms since connection open):")
    for name, value in (("tb (SYN sent)", timeline.tb),
                        ("t1 (GET sent)", timeline.t1),
                        ("t2 (GET acked)", timeline.t2),
                        ("t3 (first static byte)", timeline.t3),
                        ("t4 (last static byte)", timeline.t4),
                        ("t5 (first dynamic byte)", timeline.t5),
                        ("te (last byte)", timeline.te)):
        print("  %-24s %8.1f" % (name, units.seconds_to_ms(
            value - timeline.tb)))
    print()
    print("Derived metrics:")
    print("  RTT       = %6.1f ms" % units.seconds_to_ms(metrics.rtt))
    print("  Tstatic   = %6.1f ms" % units.seconds_to_ms(metrics.tstatic))
    print("  Tdynamic  = %6.1f ms" % units.seconds_to_ms(metrics.tdynamic))
    print("  Tdelta    = %6.1f ms" % units.seconds_to_ms(metrics.tdelta))
    print("  overall   = %6.1f ms"
          % units.seconds_to_ms(metrics.overall_delay))

    # Ground truth (unavailable to the paper, recorded by the simulator):
    service = scenario.service(Scenario.GOOGLE)
    record = service.merged_fetch_log()[session.query_id]
    print()
    print("Ground truth: Tfetch = %.1f ms  (Eq. 1: %.1f <= %.1f <= %.1f)"
          % (units.seconds_to_ms(record.tfetch),
             units.seconds_to_ms(metrics.tdelta),
             units.seconds_to_ms(record.tfetch),
             units.seconds_to_ms(metrics.tdynamic)))


if __name__ == "__main__":
    main()
