#!/usr/bin/env python
"""Search-as-you-type through split-TCP front-ends (paper Section 6).

Emulates a user typing a phrase letter by letter: each keystroke fires a
separate query on a brand-new TCP connection (exactly what the paper
observed Google's interactive search doing in 2011), and each query is
measured against the Section-2 model.

Run::

    python examples/interactive_search.py [phrase...]
"""

import sys

from repro.experiments.common import ExperimentScale
from repro.experiments.interactive import run_interactive
from repro.sim import units


def main() -> None:
    phrase = " ".join(sys.argv[1:]) or "dynamic content distribution"
    result = run_interactive(ExperimentScale.tiny(seed=5), phrase=phrase)

    print("Typed %r -> %d per-letter queries on %d distinct connections"
          % (result.phrase, result.queries,
             result.distinct_connections()))
    print()
    print("  %-32s %10s %10s %10s" % ("prefix", "Tstatic", "Tdynamic",
                                      "Tdelta"))
    for metric in result.metrics:
        print("  %-32r %8.1fms %8.1fms %8.1fms"
              % (metric.session.keyword.text,
                 units.seconds_to_ms(metric.tstatic),
                 units.seconds_to_ms(metric.tdynamic),
                 units.seconds_to_ms(metric.tdelta)))
    print()
    print("Eq. 1 bounds hold on every keystroke: %s"
          % (result.bounds.both_fraction == 1.0))
    trend = result.tdynamic_trend()
    print("Tdynamic trend (late vs early keystrokes): %+.1f ms  %s"
          % (units.seconds_to_ms(trend),
             "(correlated follow-ups are cheaper, as the paper "
             "hypothesised)" if trend < 0 else ""))


if __name__ == "__main__":
    main()
