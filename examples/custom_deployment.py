#!/usr/bin/env python
"""Build your own service deployment with the library API.

Shows the composition a downstream user would do: define a custom
service profile (a hypothetical "regional search" provider), deploy it
on a topology next to a handful of clients, run a small campaign, and
run the paper's full inference pipeline on the captured traces.

Run::

    python examples/custom_deployment.py
"""

from repro.analysis.boundary import BoundaryCalibration
from repro.content.keywords import Keyword
from repro.content.page import PageProfile
from repro.core.bounds import check_bounds
from repro.core.metrics import extract_all_calibrated
from repro.measure.emulator import QueryEmulator
from repro.net.geo import GeoPoint
from repro.net.topology import Topology
from repro.services.deployment import ServiceDeployment, ServiceProfile
from repro.services.load import FrontEndLoadModel, ProcessingModel
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.tcp.config import TcpConfig
from repro.tcp.host import TcpHost


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A custom service profile: a small regional search provider with
    #    one data center, modest processing times, and CUBIC edges.
    # ------------------------------------------------------------------
    profile = ServiceProfile(
        name="regional-search",
        page_profile=PageProfile(static_size=6_000,
                                 dynamic_base_size=20_000,
                                 dynamic_complexity_size=8_000),
        processing=ProcessingModel(base=0.080, complexity_weight=1.0,
                                   popularity_discount=0.3, sigma=0.2),
        fe_load=FrontEndLoadModel(median_delay=0.006, sigma=0.3),
        fe_be_bandwidth=units.mbps(300),
        route_inflation=1.5,
        backend_window_bytes=10_000,
        edge_tcp=TcpConfig(congestion="cubic"),
    )

    # ------------------------------------------------------------------
    # 2. Deploy it: one BE in Kansas, FEs on both coasts.
    # ------------------------------------------------------------------
    sim = Simulator()
    streams = RandomStreams(seed=11)
    topology = Topology(sim, streams)
    deployment = ServiceDeployment(
        sim, topology, streams, profile,
        fe_sites=[("sf", GeoPoint(37.77, -122.42)),
                  ("nyc", GeoPoint(40.71, -74.01))],
        be_sites=[("kansas", GeoPoint(39.0, -98.0))])

    # ------------------------------------------------------------------
    # 3. Two clients, one per coast, wired by hand.
    # ------------------------------------------------------------------
    clients = {}
    for name, lat, lon, fe_tag in (("client-west", 37.8, -122.3, "sf"),
                                   ("client-east", 40.8, -74.1, "nyc")):
        node = topology.add_node(name, GeoPoint(lat, lon))
        clients[name] = TcpHost(sim, node, TcpConfig(), streams)
        frontend = deployment.frontend_by_name(fe_tag)
        topology.connect(name, frontend.node.name,
                         delay=units.ms(4), bandwidth=units.mbps(50))
    topology.build_routes()

    # ------------------------------------------------------------------
    # 4. A tiny campaign through the measurement stack.
    # ------------------------------------------------------------------
    class _Vp:
        """Minimal vantage-point shim for the emulator."""

        def __init__(self, name):
            self.name = name

    class _ScenarioShim:
        """Duck-typed scenario facade over the hand-built world."""

        def __init__(self):
            self.sim = sim

        def client_host(self, vp):
            return clients[vp.name]

        def service(self, service_name):
            assert service_name == profile.name
            return deployment

        def client_fe_rtt(self, vp, frontend, service):
            return topology.rtt(vp.name, frontend.node.name)

        def connect_default(self, service_name, vp):
            raise NotImplementedError("links are built by hand here")

    shim = _ScenarioShim()
    sessions = []
    for client_name, fe_tag in (("client-west", "sf"),
                                ("client-east", "nyc")):
        emulator = QueryEmulator(shim, _Vp(client_name),
                                 store_payload=True)
        for text in ("coffee near campus", "library opening hours",
                     "regional train schedule"):
            keyword = Keyword(text=text, popularity=0.5, complexity=0.4)
            sessions.append(emulator.submit(
                profile.name, deployment.frontend_by_name(fe_tag),
                keyword))
    sim.run()

    # ------------------------------------------------------------------
    # 5. The paper's pipeline on the captured traces.
    # ------------------------------------------------------------------
    assert all(s.complete for s in sessions), "campaign failed"
    calibration = BoundaryCalibration.from_sessions(sessions)
    metrics = extract_all_calibrated(sessions, calibration)
    bounds = check_bounds(metrics, deployment.merged_fetch_log())

    print("Custom deployment: %s" % profile.name)
    print("  static portion discovered: %d bytes"
          % calibration.static_size)
    print("  %-14s %-8s %10s %10s %10s"
          % ("client", "FE", "Tstatic", "Tdynamic", "Tdelta"))
    for metric in metrics:
        session = metric.session
        print("  %-14s %-8s %8.1fms %8.1fms %8.1fms"
              % (session.vp_name,
                 deployment.site_of_node[session.fe_name],
                 units.seconds_to_ms(metric.tstatic),
                 units.seconds_to_ms(metric.tdynamic),
                 units.seconds_to_ms(metric.tdelta)))
    print("  Eq. 1 bounds hold on %d/%d queries"
          % (int(bounds.both_fraction * bounds.n), bounds.n))


if __name__ == "__main__":
    main()
