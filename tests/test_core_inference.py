"""Unit tests for the inference components: threshold estimation,
fetch-time factoring, cache detection, and service comparison."""

import math

import pytest

from repro.analysis.stats import LinearFit
from repro.core.cache_detect import detect_result_caching
from repro.core.compare import compare_services, summarize_service
from repro.core.factoring import (
    DistancePoint,
    build_distance_points,
    build_sample_pairs,
    estimate_rtt_be,
    factor_fetch_time,
    tproc_via_geography,
)
from repro.core.metrics import QueryMetrics, QueryTimeline
from repro.core.threshold import (
    estimate_tdelta_threshold,
    split_tdynamic_regimes,
)
from repro.measure.session import QuerySession
from repro.content.keywords import Keyword


# ---------------------------------------------------------------------------
# helpers: synthetic QueryMetrics without running the simulator
# ---------------------------------------------------------------------------
def make_metric(rtt, tstatic, tdynamic, vp="vp-0", fe="fe-0",
                query_id="q", service="svc"):
    """Build QueryMetrics with prescribed values via a synthetic timeline."""
    t2 = 1.0 + rtt
    timeline = QueryTimeline(
        tb=1.0 - rtt, t1=1.0, t2=t2,
        t3=t2 + 0.001,
        t4=t2 + tstatic,
        t5=t2 + tdynamic,
        te=t2 + tdynamic + 0.05,
        rtt=rtt)
    session = QuerySession(
        query_id=query_id, service=service, vp_name=vp, fe_name=fe,
        keyword=Keyword(text="x", popularity=0.5, complexity=0.5))
    return QueryMetrics(session=session, timeline=timeline)


# ---------------------------------------------------------------------------
# threshold estimation
# ---------------------------------------------------------------------------
def synthetic_tdelta(rtt, tfetch=0.200, fe_delay=0.010, k=2.0):
    return max(0.0, tfetch - fe_delay - k * rtt)


def test_threshold_recovers_model_parameters():
    rtts = [i * 0.005 for i in range(60)]           # 0..295 ms
    tdeltas = [synthetic_tdelta(r) for r in rtts]
    estimate = estimate_tdelta_threshold(rtts, tdeltas)
    # True threshold: (0.2 - 0.01) / 2 = 95 ms.
    assert estimate.threshold_rtt == pytest.approx(0.095, abs=0.025)
    assert estimate.fit is not None
    assert estimate.fit.slope == pytest.approx(-2.0, rel=0.2)
    assert estimate.zero_bin_rtt is not None


def test_threshold_with_noise_still_close():
    import random
    rng = random.Random(4)
    rtts, tdeltas = [], []
    for _ in range(400):
        r = rng.uniform(0, 0.3)
        rtts.append(r)
        tdeltas.append(max(0.0, synthetic_tdelta(r)
                           + rng.gauss(0, 0.008)))
    estimate = estimate_tdelta_threshold(rtts, tdeltas)
    assert 0.06 < estimate.threshold_rtt < 0.14


def test_threshold_never_zero_falls_back_to_max_rtt():
    rtts = [0.01, 0.02, 0.03, 0.04]
    tdeltas = [0.5, 0.5, 0.5, 0.5]  # flat, never extinguishes
    estimate = estimate_tdelta_threshold(rtts, tdeltas)
    assert estimate.threshold_rtt >= 0.03
    assert estimate.zero_bin_rtt is None


def test_threshold_input_validation():
    with pytest.raises(ValueError):
        estimate_tdelta_threshold([0.01], [0.1])
    with pytest.raises(ValueError):
        estimate_tdelta_threshold([0.01, 0.02], [0.1])


def test_tdynamic_regime_split():
    tfetch, k = 0.200, 2.0
    rtts = [i * 0.005 for i in range(60)]
    tdynamics = [max(tfetch, 0.01 + k * r) for r in rtts]
    regimes = split_tdynamic_regimes(rtts, tdynamics)
    assert regimes.flat_level == pytest.approx(tfetch, rel=0.1)
    assert regimes.linear_fit is not None
    assert regimes.linear_fit.slope == pytest.approx(k, rel=0.3)


# ---------------------------------------------------------------------------
# factoring
# ---------------------------------------------------------------------------
def test_factoring_recovers_line():
    points = [DistancePoint("fe%d" % i, 100.0 * i,
                            0.030 + 0.0001 * 100 * i, 10)
              for i in range(1, 6)]
    factoring = factor_fetch_time(points)
    assert factoring.tproc_estimate == pytest.approx(0.030, abs=0.002)
    assert factoring.slope_ms_per_mile == pytest.approx(0.1, rel=0.05)
    assert factoring.network_share(400) > factoring.network_share(100)


def test_factoring_sample_fit_overrides_point_fit():
    points = [DistancePoint("a", 100, 0.5, 3),
              DistancePoint("b", 300, 0.5, 3)]
    samples = [(100, 0.04), (100, 0.06), (300, 0.06), (300, 0.08)]
    factoring = factor_fetch_time(points, sample_pairs=samples)
    assert factoring.fit.slope == pytest.approx(0.0001, rel=0.01)
    assert factoring.points == tuple(points)


def test_factoring_needs_two_points():
    with pytest.raises(ValueError):
        factor_fetch_time([DistancePoint("a", 10, 0.1, 5)])


def test_build_distance_points_filters_by_rtt_and_count():
    metrics_by_fe = {
        "fe-near": [make_metric(0.010, 0.01, 0.100) for _ in range(5)],
        "fe-far-clients": [make_metric(0.200, 0.01, 0.300)
                           for _ in range(5)],
        "fe-sparse": [make_metric(0.010, 0.01, 0.100)],
        "fe-unknown": [make_metric(0.010, 0.01, 0.100) for _ in range(5)],
    }
    distances = {"fe-near": 50.0, "fe-far-clients": 100.0,
                 "fe-sparse": 200.0}
    points = build_distance_points(metrics_by_fe, distances,
                                   max_client_rtt=0.040, min_samples=3)
    names = {p.fe_name for p in points}
    assert names == {"fe-near"}  # others filtered
    assert points[0].tdynamic_median == pytest.approx(0.100)


def test_build_sample_pairs():
    metrics_by_fe = {
        "fe-a": [make_metric(0.010, 0.01, 0.100),
                 make_metric(0.300, 0.01, 0.500)],  # high-RTT excluded
    }
    pairs = build_sample_pairs(metrics_by_fe, {"fe-a": 120.0},
                               max_client_rtt=0.040)
    assert pairs == [(120.0, pytest.approx(0.100))]


def test_estimate_rtt_be():
    points = [DistancePoint("a", 0, 0.030, 5),
              DistancePoint("b", 100, 0.040, 5)]
    factoring = factor_fetch_time(points)
    assert estimate_rtt_be(factoring, 100, c=2.0) == \
        pytest.approx(0.005, rel=0.05)
    with pytest.raises(ValueError):
        estimate_rtt_be(factoring, 100, c=0)


# ---------------------------------------------------------------------------
# cache detection
# ---------------------------------------------------------------------------
def test_cache_detection_fires_on_collapsed_distribution():
    same = [0.05 + 0.001 * i for i in range(30)]      # ~50 ms
    distinct = [0.25 + 0.002 * i for i in range(30)]  # ~280 ms
    result = detect_result_caching(same, distinct)
    assert result.caching_detected
    assert result.median_ratio < 0.3
    assert "CACHE" in result.verdict()


def test_cache_detection_negative_on_similar_distributions():
    import random
    rng = random.Random(1)
    same = [0.25 + rng.gauss(0, 0.02) for _ in range(50)]
    distinct = [0.26 + rng.gauss(0, 0.02) for _ in range(50)]
    result = detect_result_caching(same, distinct)
    assert not result.caching_detected
    assert "NOT" in result.verdict()


def test_cache_detection_effect_size_guard():
    """A significant but small difference must not read as caching."""
    same = [0.240 + 0.0001 * i for i in range(200)]
    distinct = [0.260 + 0.0001 * i for i in range(200)]
    result = detect_result_caching(same, distinct)
    assert result.p_value < 0.01          # statistically distinguishable
    assert not result.caching_detected    # but ratio ~0.92 > threshold


def test_cache_detection_needs_samples():
    with pytest.raises(ValueError):
        detect_result_caching([0.1], [0.1, 0.2, 0.3])


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------
def test_compare_services_paradox():
    # Service A: closer FEs (low RTT) but slow and variable.
    a = [make_metric(0.005, 0.02, 0.3 + 0.02 * (i % 7), service="a")
         for i in range(30)]
    # Service B: farther FEs but fast and stable.
    b = [make_metric(0.030, 0.01, 0.05 + 0.001 * (i % 3), service="b")
         for i in range(30)]
    report = compare_services({"a": a, "b": b})
    assert report.closer_frontends() == "a"
    assert report.faster_overall() == "b"
    assert report.more_variable() == "a"
    assert report.paradox_present
    rows = report.rows()
    assert len(rows) == 2
    assert rows[0]["service"] == "a"
    assert rows[0]["tdynamic_median_ms"] > rows[1]["tdynamic_median_ms"]


def test_compare_requires_two_services():
    metrics = [make_metric(0.01, 0.01, 0.1)]
    with pytest.raises(ValueError):
        compare_services({"only": metrics})
    with pytest.raises(ValueError):
        summarize_service("empty", [])


def test_service_summary_fields():
    metrics = [make_metric(0.010, 0.015, 0.100) for _ in range(10)]
    summary = summarize_service("svc", metrics)
    assert summary.rtt["median"] == pytest.approx(0.010)
    assert summary.tstatic["median"] == pytest.approx(0.015)
    assert summary.tdynamic["median"] == pytest.approx(0.100)
    assert summary.rtt_fraction_under_20ms == 1.0


def test_tproc_via_geography_strips_network_component():
    """Reviewer #3's estimator: Tdynamic minus geography-predicted
    C*RTTbe recovers the processing time."""
    from repro.sim import units

    distance = 300.0
    rtt_be = 2 * units.propagation_delay(distance, 1.6)
    tproc_true = 0.200
    metrics = [make_metric(0.010, 0.01, tproc_true + 3.0 * rtt_be)
               for _ in range(10)]
    estimates = tproc_via_geography(metrics, distance, c=3.0,
                                    route_inflation=1.6)
    assert len(estimates) == 10
    for estimate in estimates:
        assert estimate == pytest.approx(tproc_true, abs=1e-9)


def test_tproc_via_geography_filters_high_rtt_and_clamps():
    metrics = [make_metric(0.200, 0.01, 0.5),   # high RTT: excluded
               make_metric(0.010, 0.01, 0.001)]  # tiny Tdyn: clamped
    estimates = tproc_via_geography(metrics, 500.0, c=3.0)
    assert len(estimates) == 1
    assert estimates[0] == 0.0
    with pytest.raises(ValueError):
        tproc_via_geography(metrics, -1.0)
    with pytest.raises(ValueError):
        tproc_via_geography(metrics, 100.0, c=0)
