"""Tests for the keyword and page-content models."""

import pytest

from repro.content.keywords import Keyword, KeywordCatalog
from repro.content.page import PageGenerator, PageProfile


# ---------------------------------------------------------------------------
# keywords
# ---------------------------------------------------------------------------
def test_keyword_validation():
    with pytest.raises(ValueError):
        Keyword(text="", popularity=0.5, complexity=0.5)
    with pytest.raises(ValueError):
        Keyword(text="x", popularity=1.5, complexity=0.5)
    with pytest.raises(ValueError):
        Keyword(text="x", popularity=0.5, complexity=-0.1)
    with pytest.raises(ValueError):
        Keyword(text="x", popularity=0.5, complexity=0.5, granularity=0)


def test_catalog_is_deterministic():
    a = KeywordCatalog(seed=5)
    b = KeywordCatalog(seed=5)
    assert [k.text for k in a.popular(10)] == \
           [k.text for k in b.popular(10)]
    assert [k.text for k in a.complex(5)] == \
           [k.text for k in b.complex(5)]


def test_keyword_classes_have_expected_attribute_ranges():
    catalog = KeywordCatalog(seed=1)
    for keyword in catalog.popular(20):
        assert keyword.popularity >= 0.8
        assert keyword.complexity <= 0.15
        assert keyword.suggested
    for keyword in catalog.complex(20):
        assert keyword.popularity <= 0.05
        assert keyword.complexity >= 0.7
    for keyword in catalog.mixed(20):
        assert 0.3 <= keyword.popularity <= 0.7


def test_figure3_set_has_one_of_each_class():
    kws = KeywordCatalog(seed=2).figure3_set()
    assert len(kws) == 4
    assert len({k.text for k in kws}) == 4
    # Ordered from cheapest to most expensive back-end work.
    assert kws[0].popularity > kws[3].popularity
    assert kws[3].complexity > kws[0].complexity


def test_bulk_pool_split_and_uniqueness():
    pool = KeywordCatalog(seed=3).bulk_pool(count=1000)
    assert len(pool) == 1000
    assert len({k.text for k in pool}) == 1000
    suggested = [k for k in pool if k.suggested]
    assert 400 <= len(suggested) <= 600
    assert min(k.popularity for k in suggested) >= 0.6


def test_refinement_chain_granularity_increases():
    chain = KeywordCatalog.refinement_chain(
        ["computer", "science", "department", "at", "university"])
    assert [k.granularity for k in chain] == [1, 2, 3, 4, 5]
    assert chain[0].text == "computer"
    assert chain[-1].text == "computer science department at university"
    # Refinement lowers popularity and raises complexity.
    assert chain[-1].popularity < chain[0].popularity
    assert chain[-1].complexity > chain[0].complexity


# ---------------------------------------------------------------------------
# pages
# ---------------------------------------------------------------------------
@pytest.fixture
def generator():
    return PageGenerator("svc", PageProfile(static_size=4000,
                                            dynamic_base_size=20_000,
                                            dynamic_complexity_size=10_000))


def kw(text="test query", popularity=0.5, complexity=0.5):
    return Keyword(text=text, popularity=popularity, complexity=complexity)


def test_static_content_is_constant_and_sized(generator):
    static1 = generator.static_content()
    static2 = generator.static_content()
    assert static1 == static2
    assert len(static1) == 4000
    assert b"Videos" in static1  # the paper's static menu bar
    assert b"News" in static1


def test_static_differs_between_services():
    a = PageGenerator("svc-a", PageProfile(static_size=4000))
    b = PageGenerator("svc-b", PageProfile(static_size=4000))
    assert a.static_content() != b.static_content()


def test_dynamic_content_depends_on_keyword(generator):
    d1 = generator.dynamic_content(kw("alpha"))
    d2 = generator.dynamic_content(kw("beta"))
    assert d1 != d2
    # Deterministic per keyword.
    assert d1 == generator.dynamic_content(kw("alpha"))


def test_dynamic_size_grows_with_complexity(generator):
    small = generator.dynamic_content(kw("a", complexity=0.0))
    large = generator.dynamic_content(kw("b", complexity=1.0))
    assert len(large) > len(small) + 5000


def test_full_page_is_static_prefix_plus_dynamic(generator):
    keyword = kw("gamma")
    page = generator.full_page(keyword)
    assert page.startswith(generator.static_content())
    assert page[len(generator.static_content()):] == \
        generator.dynamic_content(keyword)


def test_pages_share_static_prefix_across_keywords(generator):
    """The property the paper's content analysis exploits: responses for
    different keywords agree exactly on the static prefix and diverge
    somewhere in the dynamic part."""
    page_a = generator.full_page(kw("query one"))
    page_b = generator.full_page(kw("query two"))
    boundary = len(generator.static_content())
    assert page_a[:boundary] == page_b[:boundary]
    assert page_a[boundary:boundary + 2000] != page_b[boundary:boundary + 2000]


def test_profile_validation():
    with pytest.raises(ValueError):
        PageProfile(static_size=10)
    with pytest.raises(ValueError):
        PageProfile(dynamic_base_size=10)


def test_dynamic_target_size_model():
    profile = PageProfile(static_size=4000, dynamic_base_size=20_000,
                          dynamic_complexity_size=10_000)
    easy = profile.dynamic_size(kw("a", complexity=0.0, popularity=0.0))
    hard = profile.dynamic_size(kw("b", complexity=1.0, popularity=0.0))
    assert easy == 20_000
    assert hard == 30_000
