"""Session driver: one replicated effect, one the fast path misses."""


def submit(service, stack, keyword, qid, seq, frame, outcome):
    service.register(keyword)
    service.note_query(qid)
    stack.transmit(seq, frame)
    service.result_log[qid] = outcome  # expect: EFF001,RPLY001
