"""Replicated-effects contract for the fixture; stale vs the derived
closure (missing nothing, but carrying the manager's ghost_log)."""

REPLICATED_EFFECTS = (  # expect: EFF004,RPLY002
    "packet_log[]",
    "register",
    "ghost_log[]",
)
