"""Fast-path manager: a simflow replication root with one fabricated
effect and one scope-mismatched metric replication."""


class Manager:
    def __init__(self, sim):
        self.sim = sim
        self.ghost_log = {}

    def _replay(self, service, stack, entry, start):
        service.register(entry.keyword)
        self.sim.schedule_timeline(start, [
            (entry.offset, self._server_effects,
             (service, stack, entry)),
            (entry.duration, self._finalize, (entry,)),
        ])

    def _server_effects(self, service, stack, entry):
        metrics.inc("fx.queries", scope=SCOPE_SIM)  # expect: EFF003
        stack.record_replayed_packet(entry.seq, entry.frame)

    def _finalize(self, entry):
        self.ghost_log[entry.qid] = entry  # expect: EFF002
