"""Session-path TCP code whose effect the manager replicates."""


class Stack:
    def __init__(self, node):
        self.packet_log = {}

    def transmit(self, seq, frame):
        # Allowlisted AND in the replication root's closure via
        # record_replayed_packet: no finding.
        self.packet_log[seq] = frame

    def record_replayed_packet(self, seq, frame):
        # The replication mechanism the manager delegates to.
        self.packet_log[seq] = frame
