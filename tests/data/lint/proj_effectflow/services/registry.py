"""Session-path service code with a scope-consistent metric write."""


class Registry:
    def __init__(self):
        self.entries = {}

    def register(self, keyword):
        self.entries[keyword] = True

    def note_query(self, qid):
        # Host scope (the runtime default); the manager's replication
        # writes the same counter with sim scope -> EFF003 there.
        metrics.inc("fx.queries")
