"""Fixture: a *wrong* trace exporter (see test_lint_rules).

The real exporters (``repro.obs.export``) must never reach for wall
clocks or OS entropy — span timestamps are simulated time and ids are
dense preorder indexes, so serial and sharded runs export byte-identical
files.  This fixture writes the exporter the tempting-but-broken way and
proves simlint's determinism pack rejects every such escape hatch.
"""

import os
import time
import uuid
from datetime import datetime


def export_header(span_count):
    return {
        "kind": "header",
        "exported_at": time.time(),  # expect: DET001
        "span_count": span_count,
    }


def export_span(span):
    record = dict(span)
    record["id"] = str(uuid.uuid4())  # expect: DET002
    record["written"] = datetime.now().isoformat()  # expect: DET001
    return record


def trace_file_name(prefix):
    return "%s-%s.jsonl" % (prefix, os.urandom(4).hex())  # expect: DET002
