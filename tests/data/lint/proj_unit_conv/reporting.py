"""Inconsistent inferred return units across branches (UNIT007)."""

from repro.sim import units


def span_duration(raw_s, as_ms):  # expect: UNIT007
    if as_ms:
        return units.seconds_to_ms(raw_s)
    return raw_s


def span_duration_ms(raw_s):
    return units.seconds_to_ms(raw_s)
