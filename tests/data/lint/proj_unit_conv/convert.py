"""Double scale conversions (UNIT009), direct and through one local."""

from repro.sim import units


def report_roundtrip(elapsed):
    scaled = units.ms(elapsed)
    return units.seconds_to_ms(scaled)  # expect: UNIT009


def report_direct(elapsed):
    return units.seconds_to_ms(units.ms(elapsed))  # expect: UNIT009


def transfer_budget(size_bytes, rate_mbps):
    # Composing a scale conversion with a *computing* helper is fine.
    bandwidth = units.mbps(rate_mbps)
    return units.transmission_delay(size_bytes, bandwidth)
