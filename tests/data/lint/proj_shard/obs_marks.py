"""fork_mark()/rollback() pairing (SHARD003)."""


def bad_fork(obs):
    mark = obs.fork_mark()  # expect: SHARD003
    return mark


def good_fork(obs, parts):
    mark = obs.fork_mark()
    merge_marked(obs, parts, mark)


def merge_marked(obs, parts, mark):
    for part in parts:
        obs.absorb(part)
    obs.rollback(mark)
