"""Shard dispatch whose workers and merge step break shard-safety."""

from state import note_result, reset_counter


def _worker(shard):
    reset_counter()
    note_result(shard, 1)
    return shard


def _merge_metrics(parts):
    merged = []
    seen = set(parts)
    for part in seen:  # expect: SHARD002
        merged.append(part)
    return merged


def run_campaign(pool, shards):
    results = pool.map_shards(_worker, shards)
    return _merge_metrics(results)
