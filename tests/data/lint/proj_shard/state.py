"""Module-level state the shard workers (wrongly) write through."""

RESULTS = {}
TOTALS = []


def note_result(key, value):
    RESULTS[key] = value  # expect: SHARD001


def reset_counter():
    global COUNTER
    COUNTER = 0  # expect: SHARD001


def scoped_results(results):
    # Clean: ``results`` is a parameter, not the module-level dict.
    results["ok"] = True
    return results
