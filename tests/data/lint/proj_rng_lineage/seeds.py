"""Per-shard sampler that (wrongly) draws from the shared streams."""


class Sampler:
    def __init__(self, shard):
        self.shard = shard

    def draw(self, streams):
        return streams.uniform(0.0, 1.0)  # expect: RNG001
