"""Seed admission whose key namespace swallows campaign stream seeds."""


def admit_seed(seed, name):
    return derive_seed(seed, "pool/%s" % name)  # expect: RNG002
