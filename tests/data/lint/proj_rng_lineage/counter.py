"""Ordinal-counter keying where another method advances the ordinal."""


class Sequencer:
    def __init__(self, seed):
        self._seed = seed
        self._seq = 0

    def bump(self):
        self._seq += 1

    def draw(self):
        return derive_seed(self._seed, "seq/run#%d" % self._seq)  # expect: RNG003
