"""Shard campaign driver: dispatch, a keyed/shared sibling pair, and
the stream-seed namespace the pool module later collides with."""


def run(pool, shards):
    return pool.map_shards(_worker, shards)


def _worker(shard):
    sampler = Sampler(shard)
    jittered(shard.streams, shard.index)
    return sampler.draw(shard.streams)


def jittered(streams, index):
    lane = streams.keyed("lane#%d" % index)
    # The keyed sibling above exempts this shared draw: the function
    # demonstrably knows about per-shard keying.
    return lane.sample() + streams.uniform(0.0, 0.5)


def stream_seed(seed, label):
    return derive_seed(seed, "pool/stream/%s" % label)
