"""Session-path service code whose effects are allowlisted."""


class Registry:
    def __init__(self):
        self.entries = {}
        self.query_log = {}

    def register(self, keyword):
        # Plain attribute writes are not effect-shaped; only the
        # *callers* of register() are matched against the allowlist.
        self.entries[keyword] = True

    def record_query(self, qid, record):
        self.query_log[qid] = record
