"""Session-path TCP code with one unreplicated effect."""


class Stack:
    def __init__(self, node):
        self.retrans_log = {}
        # Constructor-time topology wiring is exempt: it happens before
        # any session exists, so replay has nothing to replicate.
        node.register_protocol("tcp", self._receive)

    def _receive(self, packet):
        self.retrans_log[packet.flow] = packet  # expect: RPLY001
