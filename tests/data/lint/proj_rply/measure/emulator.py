"""Session driver: one allowlisted effect call, one missing."""


def submit(service, keyword, qid, record):
    service.register(keyword)
    service.record_query(qid, record)  # expect: RPLY001
