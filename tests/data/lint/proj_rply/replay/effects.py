"""Replicated-effects contract for the fixture; one entry is stale."""

REPLICATED_EFFECTS = (  # expect: RPLY002
    "register",
    "query_log[]",
    "reserve_port",
)
