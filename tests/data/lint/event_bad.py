"""Fixture: every event-safety rule fires here (see test_lint_rules)."""

from repro.sim.engine import Simulator


def drain(sim):
    sim.run()  # expect: EVT001


def tick(sim):
    drain(sim)


def start(sim: Simulator):
    sim.schedule(1.0, tick, sim)


def rewind(sim):
    sim.schedule(-0.5, print)  # expect: EVT002


class Watchdog:
    def __init__(self, sim):
        self.sim = sim
        self.handle = None

    def arm(self):
        self.sim.schedule(5.0, self.fire)  # expect: EVT003

    def disarm(self):
        if self.handle is not None:
            self.handle.cancel()

    def fire(self):
        self.handle = None
