"""Nondeterminism sources for the proj_flow fixture.

``now`` is the single wall-clock read; everything downstream of it in
the other modules is reached only through these helpers, so every
DET006-DET008 finding below exercises the cross-module taint engine.
"""

import time


def now():
    return time.time()  # expect: DET001


def jittered(base):
    return base + now()
