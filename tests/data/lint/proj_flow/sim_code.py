"""Tainted flows into the event queue (DET006) and seeds (DET007)."""

from helpers import jittered, now


def schedule_backoff(sim, cb):
    delay = jittered(0.5)
    sim.schedule(delay, cb)  # expect: DET006


def schedule_direct(sim, cb):
    sim.call_at(now(), cb)  # expect: DET006


def schedule_clean(sim, cb):
    sim.schedule(0.25, cb)


def reseed(rng):
    rng.seed(now())  # expect: DET007


def make_streams(streams_cls):
    return streams_cls(seed=now())  # expect: DET007


def run_with_seed(sim, base_seed):  # expect: DET007
    return base_seed * 2


def forward_clock(sim):
    # Taints run_with_seed's base_seed parameter at a distance.
    return run_with_seed(sim, jittered(1.0))
