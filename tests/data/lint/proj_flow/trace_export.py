"""Tainted exported trace fields (DET008)."""

import json

from helpers import now


def export_spans(handle, spans):
    record = {"spans": spans, "generated_at": now()}
    handle.write(json.dumps(record))  # expect: DET008


def export_clean(handle, spans):
    handle.write(json.dumps({"spans": list(spans)}))
