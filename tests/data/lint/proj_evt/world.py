"""Cross-file re-entrancy fixture (the case per-file EVT001 missed).

``start`` schedules ``tick``; ``tick`` calls into another module whose
helper re-enters ``Simulator.run()``.  A per-file pass over either
module alone sees nothing wrong — only the cross-module call graph
connects the callback to the run() site.
"""

from engine_helpers import drain, peek


def start(sim):
    sim.schedule(1.0, tick)
    sim.schedule(2.0, probe)


def tick():
    drain()


def probe():
    # Clean callback: crosses modules but never reaches run().
    peek()
