"""Helpers for the proj_evt fixture; ``drain`` re-enters the engine."""


def get_simulator():
    raise NotImplementedError("fixture stub")


def drain():
    sim = get_simulator()
    sim.run()  # expect: EVT001


def peek():
    sim = get_simulator()
    return sim.now
