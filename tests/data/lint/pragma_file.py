"""Fixture: a file-level pragma silences DET001 for the whole module."""

# simlint: ignore-file[DET001]

import time


def first():
    return time.time()


def second():
    return time.time()
