"""Fixture: every unit-safety rule fires here (see test_lint_rules)."""

from repro.sim import units


def total_latency(rtt_ms, proc_delay_s):
    return rtt_ms + proc_delay_s  # expect: UNIT002


def breaches_budget(tfetch_ms, budget_s):
    return tfetch_ms > budget_s  # expect: UNIT002


def distance_minus_time(path_miles, rtt_ms):
    return path_miles - rtt_ms  # expect: UNIT002


def mislabel(span_ms):
    span_s = span_ms  # expect: UNIT003
    return span_s


def bad_conversion(delay_ms):
    delay_out_ms = units.ms(delay_ms)  # expect: UNIT004
    return delay_out_ms


def send_after(sim, gap_ms):
    sim.schedule(gap_ms, print)  # expect: UNIT001


def configure(connect_timeout_s=None):
    return connect_timeout_s


def setup(handshake_ms):
    return configure(connect_timeout_s=handshake_ms)  # expect: UNIT001


def local_positional(size_bytes, window_ms):
    return units.transmission_delay(window_ms, size_bytes)  # expect: UNIT001, UNIT001
