"""Fixture: the same violations as the *_bad modules, each suppressed.

Running simlint over this file must yield zero unsuppressed findings.
"""

import random
import time


def timestamp():
    return time.time()  # simlint: ignore[DET001]


def jitter():
    return random.random()  # simlint: ignore


def total_latency(rtt_ms, proc_delay_s):
    return rtt_ms + proc_delay_s  # simlint: ignore[UNIT002]


def rewind(sim):
    sim.schedule(-1.0, print)  # simlint: ignore[EVT002]


def send_after(sim, gap_ms):
    # A multi-line statement may carry the ignore on any of its lines.
    sim.schedule(
        gap_ms, print)  # simlint: ignore[UNIT001]
