"""Callee whose signature declares seconds via its parameter suffix."""


def pace(sim, gap_s, cb):
    sim.schedule(gap_s, cb)
