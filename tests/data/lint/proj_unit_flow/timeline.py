"""Unit seeds for the proj_unit_flow fixture.

``window()`` returns milliseconds but no name anywhere in this fixture
carries an ``_ms`` suffix: every finding downstream of it exercises the
simtype inference engine, not the suffix rules.
"""

from repro.sim import units


def window():
    return units.seconds_to_ms(0.25)


def total_wait():
    rtt = window()
    grace = 0.75  # simlint: unit[s]
    return rtt + grace  # expect: UNIT005


def total_wait_clean():
    rtt = window()
    processing = window()
    return rtt + processing
