"""Seconds-bounded histogram sink (mirrors repro.obs.metrics)."""

from timeline import window


class Histogram:
    def __init__(self):
        self.count = 0

    def observe(self, value):
        self.count = self.count + 1


def record_window(hist):
    hist.observe(window())  # expect: UNIT006


def record_clean(hist, elapsed_s):
    hist.observe(elapsed_s)
