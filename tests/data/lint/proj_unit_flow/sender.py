"""Call site disagreeing with an inferred signature (UNIT008).

``pace()`` is defined in another module, so the per-file UNIT001 rule
never sees its signature; the argument itself is unsuffixed, so only
inference knows it carries milliseconds.
"""

from pacing import pace
from timeline import window


def drive(sim, cb):
    gap = window()
    pace(sim, gap, cb)  # expect: UNIT008


def drive_clean(sim, cb):
    pace(sim, 0.25, cb)
