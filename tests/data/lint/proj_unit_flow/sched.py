"""Wrong-unit value reaching the schedule() seconds slot (UNIT006).

The flagged path is suffix-free end to end: ``window()`` lives in
another module and returns milliseconds only the interprocedural
return-unit summary knows about.
"""

from timeline import window


def arm(sim, cb):
    wait = window()
    sim.schedule(wait, cb)  # expect: UNIT006


def arm_clean(sim, cb):
    sim.schedule(0.25, cb)
