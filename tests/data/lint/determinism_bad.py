"""Fixture: every determinism rule fires here (see test_lint_rules).

Lines carrying an ``expect`` marker comment must produce exactly that
finding; the test fails on both missed and spurious findings.
"""

import os
import random
import time
from datetime import datetime

from repro.sim.engine import Simulator


def timestamp():
    return time.time()  # expect: DET001


def report_day():
    return datetime.now()  # expect: DET001


def session_token():
    return os.urandom(8)  # expect: DET002


def jitter():
    return random.random()  # expect: DET003


def pick_first(candidates):
    random.shuffle(candidates)  # expect: DET003
    return candidates[0]


def stream_seed(name):
    seed = hash(name)  # expect: DET004
    return seed


def seeded_rng(name):
    return random.Random(hash(name))  # expect: DET004


def order_sites(sites):
    return sorted(sites, key=hash)  # expect: DET004


def schedule_all(sim: Simulator, nodes):
    pending = {node for node in nodes}
    for node in pending:  # expect: DET005
        sim.schedule(0.0, node.start)
