"""simtype tests: lattice laws (property-based), the arithmetic
algebra checked against the real :mod:`repro.sim.units` helpers,
annotation parsing, interprocedural inference, and signature-table
round trips.

The lattice properties are what the fixpoints in
:mod:`repro.lint.simtype` lean on: a non-commutative or
non-associative join would make inference results depend on module
iteration order.
"""

import ast
import json
import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lint.cli import main
from repro.lint.project import (
    ProjectContext,
    extract_module_facts,
    parse_unit_annotations,
)
from repro.lint.simtype import (
    CONFLICT,
    DIMENSIONLESS,
    UnitAnalysis,
    add_units,
    div_units,
    is_concrete,
    join,
    mul_units,
)
from repro.lint.unit_safety import (
    ANNOTATION_UNITS,
    CONVERSION_RETURNS,
    SUFFIX_UNITS,
    unit_of_name,
)
from repro.sim import units as sim_units

# Every abstract value the lattice can hold: all concrete units, the
# extremes, and parameter placeholders.
_VALUES = (sorted(set(unit for _suffix, unit in SUFFIX_UNITS))
           + [DIMENSIONLESS, CONFLICT,
              ("<param>", "delay"), ("<param>", "grace"), None])

units_st = st.sampled_from(_VALUES)


# ---------------------------------------------------------------------------
# lattice laws
# ---------------------------------------------------------------------------
@given(units_st, units_st)
def test_join_commutative(a, b):
    assert join(a, b) == join(b, a)


@given(units_st, units_st, units_st)
def test_join_associative(a, b, c):
    assert join(join(a, b), c) == join(a, join(b, c))


@given(units_st)
def test_join_idempotent_with_bottom_and_top(a):
    assert join(a, a) == a
    assert join(a, None) == a
    assert join(None, a) == a
    assert join(a, CONFLICT) == CONFLICT


@given(units_st, units_st)
def test_mul_commutative(a, b):
    assert mul_units(a, b) == mul_units(b, a)


@given(units_st)
def test_dimensionless_is_multiplicative_identity(a):
    if is_concrete(a):
        assert mul_units(a, DIMENSIONLESS) == a
        assert div_units(a, DIMENSIONLESS) == a
        assert div_units(a, a) == DIMENSIONLESS


@given(units_st, units_st)
def test_add_only_mixes_on_concrete_disagreement(a, b):
    result, mixed = add_units(a, b)
    if mixed:
        assert is_concrete(a) and is_concrete(b) and a != b
        assert result == CONFLICT
    elif is_concrete(a) and is_concrete(b):
        assert a == b and result == a


def test_rate_time_size_triangle():
    bytes_, secs = ("size", "bytes"), ("time", "s")
    rate = ("rate", "bytes_per_s")
    assert div_units(bytes_, secs) == rate
    assert div_units(bytes_, rate) == secs
    assert mul_units(rate, secs) == bytes_
    assert div_units(("distance", "miles"), ("speed", "miles_per_s")) \
        == secs
    # Nothing outside the tables is guessed.
    assert mul_units(secs, secs) is None
    assert div_units(secs, bytes_) is None


# ---------------------------------------------------------------------------
# conversion round trips against the real helpers
# ---------------------------------------------------------------------------
@given(st.floats(min_value=1e-6, max_value=1e9, allow_nan=False))
def test_ms_round_trip_matches_helpers(value):
    assert sim_units.seconds_to_ms(sim_units.ms(value)) == pytest.approx(value)  # simlint: ignore[UNIT009] round-trip check on purpose


@given(st.floats(min_value=1e-3, max_value=1e6, allow_nan=False))
def test_rate_helpers_agree_on_scale(value):
    assert sim_units.mbps(value) == pytest.approx(
        sim_units.kbps(value * 1000.0))
    assert sim_units.gbps(value) == pytest.approx(
        sim_units.mbps(value * 1000.0))


def test_conversion_tables_match_helper_semantics():
    # The lint tables claim these return units; the docstrings in
    # repro.sim.units are the ground truth they must track.
    assert CONVERSION_RETURNS["units.ms"] == ("time", "s")
    assert CONVERSION_RETURNS["units.seconds_to_ms"] == ("time", "ms")
    for tail in ("units.kbps", "units.mbps", "units.gbps"):
        assert CONVERSION_RETURNS[tail] == ("rate", "bytes_per_s")


def test_suffix_lookup_is_case_insensitive():
    assert unit_of_name("SPEED_OF_LIGHT_MILES_PER_S") \
        == ("speed", "miles_per_s")
    assert unit_of_name("rtt_ms") == ("time", "ms")
    assert unit_of_name("_ms") is None  # a bare suffix is not a name


# ---------------------------------------------------------------------------
# annotations
# ---------------------------------------------------------------------------
def test_annotation_tokens_cover_the_suffix_vocabulary():
    for suffix, unit in SUFFIX_UNITS:
        assert ANNOTATION_UNITS[suffix.lstrip("_")] == unit
    assert ANNOTATION_UNITS["dimensionless"] == DIMENSIONLESS


def test_annotation_parsing_accepts_known_and_flags_unknown():
    source = ("a = 1  # simlint: " + "unit[ms]\n"
              "b = 2  # simlint: " + "unit[bogus]\n")
    annotations, bad = parse_unit_annotations(source)
    assert annotations == {1: "ms"}
    assert bad == [[2, "bogus"]]


def test_bad_annotation_surfaces_as_meta_finding(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("x = 1  # simlint: " + "unit[bogus]\n",
                      encoding="utf-8")
    assert main([str(target), "--no-config", "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in report["findings"]] == ["META001"]
    assert "bogus" in report["findings"][0]["message"]


# ---------------------------------------------------------------------------
# inference engine
# ---------------------------------------------------------------------------
def _project(**modules):
    facts = []
    for name, source in sorted(modules.items()):
        tree = ast.parse(source)
        facts.append(extract_module_facts(
            name + ".py", tree, module=name, source=source))
    return ProjectContext(facts)


_TIMELINE = (
    "from repro.sim import units\n"
    "\n"
    "def window():\n"
    "    return units.seconds_to_ms(0.25)\n"
)

_CALLER = (
    "from timeline import window\n"
    "\n"
    "def wait_for():\n"
    "    pause = window()\n"
    "    return pause\n"
)


def test_return_units_propagate_interprocedurally():
    project = _project(timeline=_TIMELINE, caller=_CALLER)
    analysis = UnitAnalysis(project)
    analysis.run()
    assert analysis.summaries["timeline.window"] == ("time", "ms")
    assert analysis.summaries["caller.wait_for"] == ("time", "ms")


def test_annotations_override_inference():
    project = _project(mod=(
        "def grace():\n"
        "    pause = 2  # simlint: " + "unit[s]\n"
        "    return pause\n"))
    analysis = UnitAnalysis(project)
    analysis.run()
    assert analysis.summaries["mod.grace"] == ("time", "s")


def test_body_usage_demands_parameter_units():
    project = _project(mod=(
        "def clamp(delay, floor_s):\n"
        "    if delay < floor_s:\n"
        "        return floor_s\n"
        "    return delay\n"))
    analysis = UnitAnalysis(project)
    analysis.run()
    assert analysis.signature_unit("mod.clamp", "delay") == ("time", "s")


def test_call_sites_push_units_into_parameters():
    project = _project(
        helper=(
            "def hold(sim, pause, cb):\n"
            "    sim.schedule(pause, cb)\n"),
        caller=(
            "from helper import hold\n"
            "from repro.sim import units\n"
            "\n"
            "def drive(sim, cb):\n"
            "    hold(sim, units.seconds_to_ms(40.0), cb)\n"))
    analysis = UnitAnalysis(project)
    analysis.run()
    assert analysis.param_in["helper.hold"]["pause"] == ("time", "ms")


def test_signature_table_round_trips_and_seeds():
    project = _project(timeline=_TIMELINE, caller=_CALLER)
    analysis = UnitAnalysis(project)
    analysis.run()
    table = analysis.signature_table()
    assert table["timeline.window"]["ret"] == ["time", "ms"]
    # JSON round trip, then seed a fresh analysis over an identical
    # project: it must report itself seeded and converge to the same
    # table.
    restored = json.loads(json.dumps(table))
    fresh = _project(timeline=_TIMELINE, caller=_CALLER)
    seeded = UnitAnalysis(fresh, seed=restored)
    seeded.run()
    assert seeded.seeded
    assert seeded.signature_table() == table


# ---------------------------------------------------------------------------
# --stats plumbing
# ---------------------------------------------------------------------------
FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "data", "lint")


def test_stats_reports_per_pack_timing(capsys):
    root = os.path.join(FIXTURES, "proj_unit_flow")
    assert main([root, "--no-config", "--stats",
                 "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    packs = report["stats"]["rule_pack_seconds"]
    assert "unit_flow" in packs and "simtype-engine" in packs
    assert all(seconds >= 0.0 for seconds in packs.values())


def test_stats_text_table_lands_on_stderr(capsys):
    root = os.path.join(FIXTURES, "proj_unit_conv")
    assert main([root, "--no-config", "--stats"]) == 1
    captured = capsys.readouterr()
    assert "analyzer time by rule pack" in captured.err
    assert "total" in captured.err
