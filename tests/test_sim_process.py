"""Tests for the coroutine-style process runner."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import ProcessFailure, Signal, Sleep, WaitEvent, spawn


def test_sleep_advances_clock():
    sim = Simulator()
    log = []

    def body():
        log.append(sim.now)
        yield Sleep(2.5)
        log.append(sim.now)

    spawn(sim, body())
    sim.run()
    assert log == [0.0, 2.5]


def test_signal_wakes_waiter_with_value():
    sim = Simulator()
    got = []

    def waiter(signal):
        value = yield WaitEvent(signal)
        got.append(value)

    signal = Signal()
    spawn(sim, waiter(signal))
    sim.schedule(3.0, signal.fire, "payload")
    sim.run()
    assert got == ["payload"]


def test_signal_wakes_all_current_waiters():
    sim = Simulator()
    got = []

    def waiter(signal, tag):
        value = yield WaitEvent(signal)
        got.append((tag, value))

    signal = Signal()
    spawn(sim, waiter(signal, "a"))
    spawn(sim, waiter(signal, "b"))
    sim.schedule(1.0, signal.fire, 42)
    sim.run()
    assert sorted(got) == [("a", 42), ("b", 42)]


def test_wait_event_timeout_returns_none():
    sim = Simulator()
    got = []

    def waiter(signal):
        value = yield WaitEvent(signal, timeout=2.0)
        got.append((value, sim.now))

    spawn(sim, waiter(Signal()))
    sim.run()
    assert got == [(None, 2.0)]


def test_subprocess_return_value_propagates():
    sim = Simulator()
    result = []

    def child():
        yield Sleep(1.0)
        return 99

    def parent():
        value = yield child()
        result.append((value, sim.now))

    spawn(sim, parent())
    sim.run()
    assert result == [(99, 1.0)]


def test_process_result_and_done_signal():
    sim = Simulator()

    def body():
        yield Sleep(1.0)
        return "done-value"

    process = spawn(sim, body())
    done_seen = []

    def watcher():
        value = yield WaitEvent(process.done_signal)
        done_seen.append(value)

    spawn(sim, watcher())
    sim.run()
    assert process.finished
    assert process.result == "done-value"
    assert done_seen == ["done-value"]


def test_exception_in_body_raises_process_failure():
    sim = Simulator()

    def bad():
        yield Sleep(1.0)
        raise RuntimeError("boom")

    spawn(sim, bad())
    with pytest.raises(ProcessFailure):
        sim.run()


def test_yielding_garbage_raises_type_error():
    sim = Simulator()

    def bad():
        yield 12345

    spawn(sim, bad())
    with pytest.raises(TypeError):
        sim.run()


def test_signal_fire_count_and_return():
    sim = Simulator()
    signal = Signal("s")

    def waiter():
        yield WaitEvent(signal)

    spawn(sim, waiter())
    sim.run()  # waiter is now blocked
    assert signal.fire(1) == 1
    assert signal.fire(2) == 0  # nobody left
    assert signal.fire_count == 2
