"""Tests for the what-if experiment runner (both-service fitting)."""

import pytest

from repro.experiments.common import ExperimentScale
from repro.experiments.whatif import render_whatif, run_whatif
from repro.testbed.scenario import Scenario


@pytest.fixture(scope="module")
def whatif_result():
    return run_whatif(ExperimentScale.tiny(seed=1))


def test_whatif_fits_both_services(whatif_result):
    assert set(whatif_result.fitted) == {Scenario.GOOGLE, Scenario.BING}
    for fitted in whatif_result.fitted.values():
        assert fitted.samples > 20
        assert fitted.model.tfetch > 0


def test_whatif_separates_services_like_fig9(whatif_result):
    bing = whatif_result.fitted[Scenario.BING].model
    google = whatif_result.fitted[Scenario.GOOGLE].model
    assert bing.tfetch > 3 * google.tfetch
    assert bing.static_windows >= google.static_windows


def test_whatif_thresholds_in_paper_bands(whatif_result):
    google_threshold = whatif_result.advice[Scenario.GOOGLE].threshold_rtt
    bing_threshold = whatif_result.advice[Scenario.BING].threshold_rtt
    assert 0.03 <= google_threshold <= 0.11
    assert 0.10 <= bing_threshold <= 0.26


def test_whatif_render(whatif_result):
    text = render_whatif(whatif_result)
    assert "placement threshold" in text
    assert Scenario.BING in text and Scenario.GOOGLE in text
    assert "advice:" in text
