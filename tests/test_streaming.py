"""Tests for the bounded-memory streaming campaign runner."""

import pytest

from repro import obs
from repro.measure.streaming import (
    StreamingCampaignResult,
    StreamingSchedule,
    run_streaming_campaign,
)
from repro.parallel import run_streaming_sharded
from repro.testbed.scenario import Scenario, ScenarioConfig
from repro.workload import OpenLoopWorkload, WorkloadSpec

CONFIG = ScenarioConfig(seed=5, vantage_count=8,
                        keyed_service_draws=True,
                        deterministic_services=True)
SPEC = WorkloadSpec(seed=5, users=200, duration=300.0,
                    session_rate=0.5, keyword_count=64,
                    services=("google-like",))


def _serial(spec=SPEC, config=CONFIG, **kwargs):
    scenario = Scenario(config)
    workload = OpenLoopWorkload(
        spec, [vp.name for vp in scenario.vantage_points])
    return run_streaming_campaign(scenario, workload, **kwargs)


# ---------------------------------------------------------------------------
# StreamingSchedule
# ---------------------------------------------------------------------------
def test_streaming_schedule_duck_type():
    schedule = StreamingSchedule()
    assert schedule.count_at("fe", 1.0) == 0
    assert schedule.next_after("fe", 0.0) == float("inf")
    for time in (1.0, 2.0, 2.0, 5.0):
        schedule.feed("fe", time)
    assert schedule.count_at("fe", 2.0) == 2
    assert schedule.count_at("fe", 3.0) == 0
    assert schedule.next_after("fe", 2.0) == 5.0
    assert schedule.next_after("fe", 5.0) == float("inf")


def test_streaming_schedule_prune_keeps_answers_exact():
    schedule = StreamingSchedule()
    for index in range(6000):
        schedule.feed("fe", float(index))
    schedule.prune(3000.0)
    # Everything at/after the prune point still answers exactly.
    assert schedule.count_at("fe", 3000.0) == 1
    assert schedule.next_after("fe", 3000.0) == 3001.0


# ---------------------------------------------------------------------------
# serial runner behavior
# ---------------------------------------------------------------------------
def test_streaming_campaign_counts_and_sketches():
    result = _serial()
    assert result.events > 0
    assert result.sessions == result.events  # all queries complete
    assert result.failures == 0
    assert result.truncated == 0
    duration = result.sketches["duration/google-like"]
    assert duration.count == result.sessions - result.failures
    assert 0.0 < duration.quantile(0.5) < 5.0
    size = result.sketches["bytes/google-like"]
    assert size.quantile(0.5) > 1000.0


def test_streaming_run_is_deterministic():
    assert _serial().fingerprint() == _serial().fingerprint()


def test_streaming_batch_size_does_not_change_results():
    base = _serial()
    for batch_events in (7, 64, 100_000):
        assert _serial(batch_events=batch_events).fingerprint() \
            == base.fingerprint()


def test_streaming_memory_is_bounded():
    # The runner must not retain folded sessions, captures, or
    # ground-truth log entries between batches.
    scenario = Scenario(CONFIG)
    workload = OpenLoopWorkload(
        SPEC, [vp.name for vp in scenario.vantage_points])
    result = run_streaming_campaign(scenario, workload, batch_events=64)
    assert result.sessions > 100
    service = scenario.service("google-like")
    assert len(service.merged_fetch_log()) == 0
    assert len(service.merged_query_log()) == 0


def test_streaming_lookahead_guard():
    with pytest.raises(RuntimeError, match="lookahead"):
        _serial(lookahead=0.05)
    with pytest.raises(ValueError):
        _serial(lookahead=0.0)
    with pytest.raises(ValueError):
        _serial(batch_events=0)


def test_streaming_replay_cache_changes_no_results():
    base = _serial(replay_cache=False)
    cached = _serial(replay_cache=True)
    assert cached.replay is not None
    assert cached.replay.hits > 0
    assert cached.hit_rate() > 0.0
    assert cached.fingerprint() == base.fingerprint()


def test_streaming_hit_rate_rises_with_alpha():
    rates = []
    for alpha in (0.6, 1.2):
        spec = WorkloadSpec(seed=5, users=200, duration=300.0,
                            session_rate=0.5, keyword_count=64,
                            alpha=alpha, services=("google-like",))
        rates.append(_serial(spec=spec, replay_cache=True).hit_rate())
    assert rates[0] < rates[1]


# ---------------------------------------------------------------------------
# sharding: bit-identical aggregates at any shard count and tier
# ---------------------------------------------------------------------------
def test_sharded_matches_serial_fingerprint():
    serial = _serial()
    for shards in (2, 3, 5):
        sharded = run_streaming_sharded(Scenario(CONFIG), SPEC,
                                        shards=shards)
        assert sharded.events == serial.events
        assert sharded.sessions == serial.sessions
        assert sharded.fingerprint() == serial.fingerprint()


@pytest.mark.parametrize("tier", ["packet", "analytic", "auto"])
def test_sharded_matches_serial_across_tiers(tier):
    serial = _serial(tier=tier)
    sharded = run_streaming_sharded(Scenario(CONFIG), SPEC,
                                    shards=3, tier=tier)
    assert sharded.fingerprint() == serial.fingerprint()
    if tier != "packet":
        assert serial.tier is not None
        assert serial.tier.analytic > 0
        assert (sharded.tier.analytic + sharded.tier.simulated
                == serial.tier.analytic + serial.tier.simulated)


def test_sharding_requires_keyed_draws():
    config = ScenarioConfig(seed=5, vantage_count=4)
    with pytest.raises(ValueError, match="keyed_service_draws"):
        run_streaming_sharded(Scenario(config), SPEC, shards=2)


def test_sharded_observability_merges_to_serial_sim_scope():
    obs.enable()
    try:
        obs.reset()
        serial = _serial()
        serial_records = serial.obs_metrics.scoped(
            obs.SCOPE_SIM).as_records()
        obs.reset()
        sharded = run_streaming_sharded(Scenario(CONFIG), SPEC, shards=3)
        sharded_records = sharded.obs_metrics.scoped(
            obs.SCOPE_SIM).as_records()
        assert serial_records == sharded_records
        assert any(record["name"] == "stream.sessions"
                   for record in serial_records)
        assert sharded.fingerprint() == serial.fingerprint()
    finally:
        obs.disable()
        obs.reset()


# ---------------------------------------------------------------------------
# result merge algebra
# ---------------------------------------------------------------------------
def test_result_merge_is_order_independent():
    parts = [run_streaming_sharded(Scenario(CONFIG), SPEC, shards=1)]
    parts.append(_serial(spec=WorkloadSpec(
        seed=6, users=100, duration=200.0, session_rate=0.4,
        keyword_count=64, services=("google-like",))))
    forward = StreamingCampaignResult.merged(parts)
    backward = StreamingCampaignResult.merged(list(reversed(parts)))
    assert forward.events == backward.events
    assert forward.sessions == backward.sessions
    for name in forward.sketches:
        assert forward.sketches[name] == backward.sketches[name]
