"""Tests for the CUBIC congestion controller."""

import pytest

from repro.net.address import Endpoint
from repro.sim import units
from repro.tcp.config import TcpConfig
from repro.tcp.congestion import CubicController

from .conftest import make_world
from .helpers import CollectorApp, RespondApp, make_payload

MSS = 1000


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_cubic(iw=3, ssthresh=1 << 30):
    clock = FakeClock()
    return CubicController(MSS, iw * MSS, ssthresh, clock), clock


# ---------------------------------------------------------------------------
# unit behaviour
# ---------------------------------------------------------------------------
def test_slow_start_identical_to_reno():
    cc, clock = make_cubic(iw=2)
    assert cc.in_slow_start
    before = cc.cwnd
    cc.on_ack(MSS, before)
    assert cc.cwnd == before + MSS


def test_fast_retransmit_uses_beta():
    cc, clock = make_cubic(iw=20)
    flight = 20 * MSS
    cc.on_fast_retransmit(flight)
    assert cc.ssthresh == int(20 * MSS * CubicController.BETA)
    assert cc.in_recovery
    cc.on_recovery_exit()
    assert cc.cwnd == cc.ssthresh
    assert not cc.in_recovery


def test_window_regrows_toward_wmax_at_k():
    """After a loss, W(t) reaches the old maximum at t ~ K."""
    cc, clock = make_cubic(iw=40, ssthresh=40 * MSS)
    cc.on_fast_retransmit(40 * MSS)
    cc.on_recovery_exit()
    w_max = cc._w_max
    k = cc._k
    assert k > 0
    # Advance the clock to K and feed acks: the cubic target is ~Wmax
    # (plus a little Reno-floor creep once the target is reached).
    clock.now = k
    for _ in range(200):
        cc.on_ack(MSS, cc.cwnd)
    assert w_max <= cc.cwnd / MSS <= w_max * 1.15


def test_growth_is_concave_then_convex():
    cc, clock = make_cubic(iw=40, ssthresh=40 * MSS)
    cc.on_fast_retransmit(40 * MSS)
    cc.on_recovery_exit()
    k = cc._k
    samples = []
    for t in (0.25 * k, 0.5 * k, 0.75 * k, k, 1.5 * k, 2 * k):
        clock.now = t
        samples.append(cc._cubic_window_segments())
    # Concave before K: increments shrink; convex after: they grow.
    d1 = samples[1] - samples[0]
    d2 = samples[2] - samples[1]
    d3 = samples[3] - samples[2]
    assert d1 > d2 > d3
    assert samples[5] - samples[4] > samples[4] - samples[3]


def test_timeout_resets_to_one_segment():
    cc, clock = make_cubic(iw=30, ssthresh=30 * MSS)
    cc.on_timeout(30 * MSS)
    assert cc.cwnd == MSS
    assert cc.ssthresh == int(30 * MSS * CubicController.BETA)


def test_fast_convergence_lowers_wmax():
    cc, clock = make_cubic(iw=40, ssthresh=40 * MSS)
    cc.on_fast_retransmit(40 * MSS)
    cc.on_recovery_exit()
    first_wmax = cc._w_max
    # A second loss below the previous max triggers fast convergence.
    cc.on_fast_retransmit(cc.cwnd)
    assert cc._w_max < first_wmax


def test_clock_must_be_callable():
    with pytest.raises(TypeError):
        CubicController(MSS, MSS, MSS, clock="now")


# ---------------------------------------------------------------------------
# config / integration
# ---------------------------------------------------------------------------
def test_config_selects_cubic():
    config = TcpConfig(congestion="cubic")
    world = make_world(rtt=units.ms(40), client_config=config)
    world.server.listen(80, lambda: RespondApp(b"ok", close_after=True))
    client = CollectorApp(request=b"G")
    conn = world.client.connect(Endpoint("server", 80), client)
    assert isinstance(conn.cc, CubicController)
    world.sim.run()
    assert bytes(client.received) == b"ok"


def test_config_rejects_unknown_algorithm():
    with pytest.raises(ValueError):
        TcpConfig(congestion="vegas")


def test_cubic_transfer_reliable_under_loss():
    config = TcpConfig(congestion="cubic")
    world = make_world(rtt=units.ms(30), loss_rate=0.02, seed=13,
                       server_config=config, client_config=config)
    payload = make_payload(150_000, tag=b"C")
    world.server.listen(80, lambda: RespondApp(payload, close_after=True))
    client = CollectorApp(request=b"G")
    world.client.connect(Endpoint("server", 80), client)
    world.sim.run(until=300.0)
    assert bytes(client.received) == payload


def test_cubic_recovers_faster_than_reno_after_loss():
    """On a long transfer with one mid-stream loss, CUBIC's concave
    regrowth toward W_max beats Reno's linear climb."""
    durations = {}
    for algorithm in ("reno", "cubic"):
        config = TcpConfig(congestion=algorithm)
        world = make_world(rtt=units.ms(80), bandwidth=units.gbps(1),
                           server_config=config)
        payload = make_payload(600_000)
        world.server.listen(80, lambda: RespondApp(payload,
                                                   close_after=True))
        client = CollectorApp(request=b"G")
        link = world.topology.node("server").links["client"]
        link.fault_filter = lambda packet, index: index == 40
        world.client.connect(Endpoint("server", 80), client)
        world.sim.run(until=300.0)
        assert bytes(client.received) == payload
        durations[algorithm] = client.data_times[-1]
    assert durations["cubic"] <= durations["reno"] + 1e-9
