"""Tests for the what-if placement analysis."""

import pytest

from repro.core.whatif import (
    WhatIfError,
    advise_placement,
    fit_model,
)
from repro.sim import units

from .test_core_inference import make_metric


def synthetic_population(tfetch=0.200, fe_delay=0.010, k=2,
                         rtts=None):
    """Metrics following the abstract model exactly."""
    rtts = rtts or [0.005 * i for i in range(1, 41)]
    metrics = []
    for rtt in rtts:
        tstatic = fe_delay + k * rtt
        tdynamic = max(tfetch, tstatic)
        metrics.append(make_metric(rtt, tstatic, tdynamic))
    return metrics


def test_fit_recovers_model_parameters():
    fitted = fit_model(synthetic_population())
    assert fitted.model.static_windows == 2
    assert fitted.model.fe_delay == pytest.approx(0.010, abs=0.003)
    assert fitted.model.tfetch == pytest.approx(0.200, rel=0.1)
    assert fitted.static_fit_r2 is not None
    assert fitted.static_fit_r2 > 0.99
    assert fitted.samples == 40


def test_fit_requires_samples():
    with pytest.raises(WhatIfError):
        fit_model(synthetic_population()[:3])


def test_fit_without_rtt_spread_falls_back():
    metrics = synthetic_population(rtts=[0.020] * 10)
    fitted = fit_model(metrics)
    assert fitted.static_fit_r2 is None
    assert fitted.model.static_windows == 1
    # Tfetch still recovered from the low-RTT plateau.
    assert fitted.model.tfetch == pytest.approx(0.200, rel=0.1)


def test_placement_gain_respects_threshold():
    fitted = fit_model(synthetic_population())
    threshold = fitted.placement_threshold()
    # True threshold = (0.2 - 0.01) / 2 = 95 ms.
    assert threshold == pytest.approx(0.095, abs=0.02)
    # Below the threshold, moving closer gains nothing.
    assert fitted.placement_gain(threshold * 0.8, threshold * 0.4) == 0.0
    # Above it, it gains ~k * delta RTT.
    gain = fitted.placement_gain(0.200, 0.150)
    assert gain == pytest.approx(2 * 0.050, rel=0.2)


def test_faster_backend_gain_only_when_fetch_bound():
    fitted = fit_model(synthetic_population())
    # Fetch-bound client: halving Tproc helps substantially.
    gain_low = fitted.faster_backend_gain(0.010, tproc_speedup=2.0)
    assert gain_low > units.ms(50)
    # Delivery-bound client (far above the threshold): no gain.
    gain_high = fitted.faster_backend_gain(0.300, tproc_speedup=2.0)
    assert gain_high == 0.0
    with pytest.raises(ValueError):
        fitted.faster_backend_gain(0.01, tproc_speedup=0)
    with pytest.raises(ValueError):
        fitted.faster_backend_gain(0.01, 2.0, tproc_share=2.0)


def test_dominant_factor_switches_at_threshold():
    fitted = fit_model(synthetic_population())
    assert fitted.dominant_factor(0.010) == "fetch"
    assert fitted.dominant_factor(0.200) == "delivery"


def test_advice_fetch_bound_population():
    # All clients well below the threshold.
    metrics = synthetic_population(rtts=[0.005 * i
                                         for i in range(1, 11)])
    advice = advise_placement(metrics)
    assert advice.fraction_fetch_bound == 1.0
    assert "optimize the back end" in advice.recommendation
    assert advice.tfetch == pytest.approx(0.200, rel=0.1)


def test_advice_delivery_bound_population():
    # All clients far beyond the threshold (Tdelta == 0 everywhere).
    metrics = synthetic_population(rtts=[0.150 + 0.01 * i
                                         for i in range(12)])
    advice = advise_placement(metrics)
    assert advice.fraction_fetch_bound == 0.0
    assert "optimize placement" in advice.recommendation


def test_whatif_on_simulated_campaign():
    """End to end: fit the model on real simulated measurements and
    check the advice against the known service characteristics."""
    from repro.content.keywords import Keyword
    from repro.analysis.boundary import BoundaryCalibration
    from repro.core.metrics import extract_all_calibrated
    from repro.measure.driver import run_dataset_b
    from repro.experiments.common import calibrate_service
    from repro.testbed.scenario import Scenario, ScenarioConfig

    scenario = Scenario(ScenarioConfig(seed=33, vantage_count=16))
    service = scenario.service(Scenario.BING)
    frontend = service.frontends[0]
    calibration = calibrate_service(scenario, Scenario.BING, [frontend])
    dataset = run_dataset_b(
        scenario, Scenario.BING, frontend,
        Keyword(text="whatif probe", popularity=0.5, complexity=0.5),
        repeats=4, interval=1.0)
    metrics = extract_all_calibrated(dataset.sessions, calibration)
    fitted = fit_model(metrics)
    # The bing-like service's fetch time is a few hundred ms.
    assert 0.15 < fitted.model.tfetch < 0.6
    # Its placement threshold lands in the paper's 100-200 ms band
    # (allow slack for the small sample).
    assert 0.08 < fitted.placement_threshold() < 0.3
    advice = advise_placement(metrics)
    assert advice.recommendation
