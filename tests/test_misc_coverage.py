"""Coverage for small helpers: words, capture, sessions, timeline spans."""

import pytest

from repro.content import words
from repro.content.keywords import KeywordCatalog
from repro.measure.capture import PacketCapture, PacketEvent
from repro.measure.session import QuerySession
from repro.content.keywords import Keyword
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.sim import units
from repro.sim.engine import Simulator
from repro.tcp.segment import Segment


# ---------------------------------------------------------------------------
# word pools
# ---------------------------------------------------------------------------
def test_word_pools_nonempty_and_disjoint_enough():
    assert len(words.POPULAR_TOPICS) >= 15
    assert len(words.TOPIC_NOUNS) >= 20
    assert len(words.UNCORRELATED_NOUNS) >= 15
    # Uncorrelated nouns must not overlap the topic nouns (they model
    # the paper's "computer and potato" mixtures).
    assert not set(words.UNCORRELATED_NOUNS) & set(words.TOPIC_NOUNS)
    assert "Videos" in words.STATIC_MENU_ITEMS
    assert "News" in words.STATIC_MENU_ITEMS


def test_catalog_classes_do_not_leak_rng_state():
    """Requesting one class must not perturb another (named streams)."""
    a = KeywordCatalog(seed=9)
    b = KeywordCatalog(seed=9)
    a.popular(50)  # extra draws on catalog a
    assert [k.text for k in a.complex(5)] == \
        [k.text for k in b.complex(5)]


# ---------------------------------------------------------------------------
# capture mechanics
# ---------------------------------------------------------------------------
def make_tcp_packet(sport=1234, dport=80, data=b"abc"):
    segment = Segment(sport=sport, dport=dport, seq=1, data=data,
                      ack_flag=True)
    return Packet(src="a", dst="b", protocol="tcp",
                  size_bytes=segment.wire_size, payload=segment)


def test_capture_attach_detach():
    sim = Simulator()
    topo = Topology(sim)
    node_a = topo.add_node("a")
    topo.add_node("b")
    topo.connect("a", "b", delay=0.001, bandwidth=units.mbps(10))
    topo.build_routes()
    capture = PacketCapture(sim, node_a)
    node_a.send(make_tcp_packet())
    sim.run()
    assert len(capture.events) == 1
    assert capture.events[0].direction == "out"
    capture.detach()
    node_a.send(make_tcp_packet())
    sim.run()
    assert len(capture.events) == 1  # no longer recording
    capture.attach()
    capture.attach()  # idempotent
    node_a.send(make_tcp_packet())
    sim.run()
    assert len(capture.events) == 2
    capture.clear()
    assert capture.events == []


def test_capture_ignores_non_tcp_packets():
    sim = Simulator()
    topo = Topology(sim)
    node_a = topo.add_node("a")
    topo.add_node("b")
    topo.connect("a", "b", delay=0.001, bandwidth=units.mbps(10))
    topo.build_routes()
    capture = PacketCapture(sim, node_a)
    node_a.send(Packet(src="a", dst="b", protocol="ping", size_bytes=10))
    sim.run()
    assert capture.events == []


def test_packet_event_describe_and_flags():
    event = PacketEvent(time=1.5, direction="out", src="a", dst="b",
                        sport=1, dport=2, wire_size=40, payload_len=0,
                        seq=10, ack=20, syn=True, fin=False,
                        ack_flag=True, retransmit=False)
    text = event.describe()
    assert "a:1" in text and "b:2" in text
    assert "S" in text
    assert not event.is_pure_ack  # SYN present
    assert event.local_port == 1


def test_capture_flow_filter_window():
    sim = Simulator()
    topo = Topology(sim)
    node_a = topo.add_node("a")
    topo.add_node("b")
    topo.connect("a", "b", delay=0.001, bandwidth=units.mbps(10))
    topo.build_routes()
    capture = PacketCapture(sim, node_a)
    sim.schedule(1.0, node_a.send, make_tcp_packet(sport=1111))
    sim.schedule(2.0, node_a.send, make_tcp_packet(sport=2222))
    sim.run()
    assert len(capture.flow_events(1111)) == 1
    assert len(capture.flow_events(2222, start=1.5)) == 1
    assert capture.flow_events(2222, start=0.0, end=1.5) == []


# ---------------------------------------------------------------------------
# session helpers
# ---------------------------------------------------------------------------
def test_session_duration_and_filters():
    session = QuerySession(
        query_id="q", service="svc", vp_name="vp", fe_name="fe",
        keyword=Keyword(text="k", popularity=0.5, complexity=0.5),
        started_at=1.0)
    assert not session.complete
    assert session.duration is None
    session.completed_at = 3.5
    assert session.complete
    assert session.duration == 2.5
    session.failed = "boom"
    assert not session.complete

    inbound = PacketEvent(time=2.0, direction="in", src="fe", dst="vp",
                          sport=80, dport=5000, wire_size=140,
                          payload_len=100, seq=1, ack=1, syn=False,
                          fin=False, ack_flag=True, retransmit=False)
    outbound = PacketEvent(time=1.0, direction="out", src="vp", dst="fe",
                           sport=5000, dport=80, wire_size=40,
                           payload_len=0, seq=1, ack=0, syn=True,
                           fin=False, ack_flag=False, retransmit=False)
    session.events = [outbound, inbound]
    assert session.inbound_data_events() == [inbound]
    assert session.outbound_events() == [outbound]


# ---------------------------------------------------------------------------
# sites helpers
# ---------------------------------------------------------------------------
def test_metro_hubs_are_subset():
    from repro.testbed.sites import METROS, google_like_fe_sites
    hub_names = {m.name for m in METROS if m.hub}
    site_names = {name for name, _ in google_like_fe_sites()}
    assert site_names == hub_names
