"""Tests for the testbed: sites, vantage points, scenario wiring."""

import pytest

from repro.net.geo import GeoPoint
from repro.sim import units
from repro.testbed import sites
from repro.testbed.scenario import Scenario, ScenarioConfig
from repro.testbed.vantage import generate_vantage_points


# ---------------------------------------------------------------------------
# sites
# ---------------------------------------------------------------------------
def test_metro_catalog_shape():
    names = [m.name for m in sites.METROS]
    assert len(names) == len(set(names))
    assert len(sites.METROS) >= 40
    hubs = [m for m in sites.METROS if m.hub]
    assert 10 <= len(hubs) <= 25
    regions = {m.region for m in sites.METROS}
    assert regions == {"us", "eu", "asia", "other"}


def test_akamai_sites_denser_than_google_sites():
    akamai = sites.akamai_like_fe_sites()
    google = sites.google_like_fe_sites()
    assert len(akamai) > len(google) * 2
    # Hubs are always covered by both deployments.
    akamai_names = {name for name, _ in akamai}
    for name, _ in google:
        assert name in akamai_names


def test_akamai_coverage_parameter():
    full = sites.akamai_like_fe_sites(coverage=1.0)
    partial = sites.akamai_like_fe_sites(coverage=0.7)
    assert len(full) == len(sites.METROS)
    assert len(partial) < len(full)
    with pytest.raises(ValueError):
        sites.akamai_like_fe_sites(coverage=0.0)


def test_backend_site_lists_nonempty_and_distinct():
    google_names = {name for name, _ in sites.GOOGLE_LIKE_BE_SITES}
    bing_names = {name for name, _ in sites.BING_LIKE_BE_SITES}
    assert len(google_names) >= 5
    assert len(bing_names) >= 5
    assert google_names != bing_names


# ---------------------------------------------------------------------------
# vantage points
# ---------------------------------------------------------------------------
def test_vantage_generation_deterministic():
    a = generate_vantage_points(50, seed=9)
    b = generate_vantage_points(50, seed=9)
    assert [vp.name for vp in a] == [vp.name for vp in b]
    assert [vp.access_delay for vp in a] == [vp.access_delay for vp in b]


def test_vantage_region_mixture_roughly_matches_weights():
    vps = generate_vantage_points(400, seed=1)
    us = sum(1 for vp in vps if vp.metro.region == "us")
    eu = sum(1 for vp in vps if vp.metro.region == "eu")
    assert 0.45 < us / 400 < 0.65
    assert 0.20 < eu / 400 < 0.40


def test_vantage_delay_model():
    vps = generate_vantage_points(10, seed=2)
    vp = vps[0]
    # Same metro: no peering penalty.
    same = vp.one_way_delay_to(vp.metro.location, vp.metro.name)
    other = vp.one_way_delay_to(vp.metro.location, "elsewhere")
    assert other - same == pytest.approx(vp.peering_penalty)
    assert same >= vp.access_delay


def test_vantage_count_validation():
    with pytest.raises(ValueError):
        generate_vantage_points(0)


# ---------------------------------------------------------------------------
# scenario
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_scenario():
    return Scenario(ScenarioConfig(seed=4, vantage_count=40))


def test_scenario_has_both_services(small_scenario):
    scenario = small_scenario
    assert set(scenario.services) == {Scenario.GOOGLE, Scenario.BING}
    google = scenario.service(Scenario.GOOGLE)
    bing = scenario.service(Scenario.BING)
    assert len(bing.frontends) > len(google.frontends)
    with pytest.raises(KeyError):
        scenario.service("altavista")


def test_default_fe_is_nearest(small_scenario):
    scenario = small_scenario
    vp = scenario.vantage_points[0]
    service = scenario.service(Scenario.BING)
    fe = scenario.default_frontend(Scenario.BING, vp)
    best_rtt = scenario.client_fe_rtt(vp, fe, service)
    for other in service.frontends:
        assert best_rtt <= scenario.client_fe_rtt(vp, other, service) + 1e-12


def test_bing_default_rtts_dominate_google(small_scenario):
    """Figure 6's premise: the CDN's denser footprint yields lower RTTs."""
    scenario = small_scenario
    bing_rtts, google_rtts = [], []
    for vp in scenario.vantage_points:
        for name, bucket in ((Scenario.BING, bing_rtts),
                             (Scenario.GOOGLE, google_rtts)):
            service = scenario.service(name)
            fe = scenario.default_frontend(name, vp)
            bucket.append(scenario.client_fe_rtt(vp, fe, service))
    bing_under_20 = sum(1 for r in bing_rtts if r < units.ms(20))
    google_under_20 = sum(1 for r in google_rtts if r < units.ms(20))
    assert bing_under_20 > google_under_20
    assert bing_under_20 / len(bing_rtts) > 0.6


def test_link_creation_is_idempotent(small_scenario):
    scenario = small_scenario
    vp = scenario.vantage_points[1]
    service = scenario.service(Scenario.GOOGLE)
    fe = scenario.default_frontend(Scenario.GOOGLE, vp)
    d1 = scenario.link_client_to_frontend(vp, fe, service)
    d2 = scenario.link_client_to_frontend(vp, fe, service)
    assert d1 == d2
    # The node has exactly one link to that FE.
    node = scenario.client_host(vp).node
    assert sum(1 for n in node.links if n == fe.node.name) == 1
