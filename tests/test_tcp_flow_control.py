"""TCP flow-control and configuration behaviour tests."""

import pytest

from repro.net.address import Endpoint
from repro.sim import units
from repro.tcp.config import TcpConfig

from .conftest import make_world
from .helpers import CollectorApp, EchoServerApp, RespondApp, make_payload

RTT = units.ms(50)


def test_small_receive_window_limits_throughput():
    """A tiny advertised window caps in-flight data per RTT."""
    small_rwnd = TcpConfig(receive_window_bytes=4 * 1460)
    big_rwnd = TcpConfig(receive_window_bytes=1 << 20)
    durations = {}
    payload = make_payload(120_000)
    for name, config in (("small", small_rwnd), ("big", big_rwnd)):
        # The receiver's advertised window is modelled by the *sender's*
        # peer_rwnd, which comes from its own config in this simplified
        # stack; configure the server (sender) side.
        world = make_world(rtt=RTT, bandwidth=units.gbps(1),
                           server_config=TcpConfig(
                               receive_window_bytes=(
                                   config.receive_window_bytes)))
        world.server.listen(80, lambda: RespondApp(payload,
                                                   close_after=True))
        client = CollectorApp(request=b"G")
        world.client.connect(Endpoint("server", 80), client)
        world.sim.run()
        assert bytes(client.received) == payload
        durations[name] = client.data_times[-1] - client.data_times[0]
    # 120 kB at 4*1460 B per RTT needs ~20 RTTs; the big window needs
    # only the slow-start ramp (~5).
    assert durations["small"] > durations["big"] * 2


def test_custom_mss_segments_on_wire():
    config = TcpConfig(mss=500)
    world = make_world(rtt=RTT, server_config=config)
    payload = make_payload(5000)
    world.server.listen(80, lambda: RespondApp(payload, close_after=True))
    client = CollectorApp(request=b"G")

    sizes = []
    world.topology.node("client").add_tap(
        lambda event, packet: sizes.append(packet.payload.data)
        if event == "recv" and packet.payload.data else None)
    world.client.connect(Endpoint("server", 80), client)
    world.sim.run()
    assert bytes(client.received) == payload
    assert max(len(d) for d in sizes) <= 500


def test_nagle_coalesces_small_writes():
    """With Nagle on, many tiny writes produce fewer, larger segments."""
    segment_counts = {}
    for nagle in (False, True):
        world = make_world(rtt=RTT,
                           client_config=TcpConfig(nagle=nagle))
        world.server.listen(80, EchoServerApp)

        class Dripper(CollectorApp):
            def on_established(self, conn):
                super().on_established(conn)
                for i in range(20):
                    world.sim.schedule(0.001 * i, conn.send, b"x")

        client = Dripper()
        data_segments = []
        world.topology.node("server").add_tap(
            lambda event, packet: data_segments.append(packet)
            if event == "recv" and packet.payload.data else None)
        world.client.connect(Endpoint("server", 80), client)
        world.sim.run(until=30.0)
        segment_counts[nagle] = len(data_segments)
    assert segment_counts[True] < segment_counts[False]


def test_delayed_ack_coalesces_acks():
    """Delayed ACKs halve the pure-ACK count on a bulk transfer."""
    ack_counts = {}
    payload = make_payload(60_000)
    for delack in (False, True):
        world = make_world(rtt=RTT,
                           client_config=TcpConfig(delayed_ack=delack))
        world.server.listen(80, lambda: RespondApp(payload,
                                                   close_after=True))
        client = CollectorApp(request=b"G")
        acks = []
        world.topology.node("server").add_tap(
            lambda event, packet: acks.append(packet)
            if event == "recv" and packet.payload.is_pure_ack else None)
        world.client.connect(Endpoint("server", 80), client)
        world.sim.run(until=60.0)
        assert bytes(client.received) == payload
        ack_counts[delack] = len(acks)
    assert ack_counts[True] < ack_counts[False] * 0.75


def test_abort_mid_transfer_notifies_app():
    world = make_world(rtt=RTT)
    payload = make_payload(200_000)
    world.server.listen(80, lambda: RespondApp(payload, close_after=True))
    client = CollectorApp(request=b"G")
    conn = world.client.connect(Endpoint("server", 80), client)
    # Abort shortly after the transfer starts.
    world.sim.schedule(RTT * 3, conn.abort, "operator abort")
    world.sim.run(until=10.0)
    assert client.errors == ["operator abort"]
    assert len(client.received) < len(payload)
    # The flow is released.
    assert conn.flow not in world.client.connections


def test_iw10_config_preset():
    from repro.tcp.config import IW10, CLASSIC_2011
    assert IW10.initial_window_segments == 10
    assert CLASSIC_2011.initial_window_segments == 3
    assert IW10.initial_cwnd_bytes == 10 * IW10.mss


def test_config_with_overrides_is_pure():
    base = TcpConfig()
    tweaked = base.with_overrides(mss=1000, congestion="cubic")
    assert tweaked.mss == 1000
    assert tweaked.congestion == "cubic"
    assert base.mss == 1460
    assert base.congestion == "reno"
