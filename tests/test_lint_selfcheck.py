"""Self-check: simlint must pass over this repository.

This is the test that turns the determinism / unit / event invariants
from convention into machine enforcement: any new wall-clock call,
global-random draw, unit-suffix mix-up, or event-queue hazard anywhere
in ``src/repro`` or ``tests`` fails the suite unless it carries an
explicit, reviewable ``# simlint: ignore[...]``.
"""

import os

from repro.lint import LintRunner, load_config

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run(paths):
    config = load_config(os.path.join(REPO_ROOT, "pyproject.toml"))
    runner = LintRunner(config)
    findings = runner.run_paths([os.path.join(REPO_ROOT, p) for p in paths])
    return runner, findings


def test_src_tree_has_zero_unsuppressed_findings():
    runner, findings = _run(["src/repro"])
    active = [f for f in findings if not f.suppressed]
    assert active == [], "\n".join(f.render() for f in active)
    # The walk really covered the tree, and the known intentional
    # deviations (CLI wall-clock timing, fire-and-forget timers) are
    # present as *suppressed* findings rather than invisible.
    assert runner.files_scanned >= 80
    assert any(f.suppressed for f in findings)
    # The project-scope packs run here too: the two documented
    # shard-protocol deviations (obs re-enable in workers, fork_mark
    # rolled back by the parent) must show up suppressed, proving the
    # cross-module analysis actually executed over the real tree.
    assert {"SHARD001", "SHARD003"} <= {f.rule for f in findings
                                        if f.suppressed}


def test_obs_tree_is_clean_without_suppressions():
    # The observability subsystem is held to a stricter bar than the
    # rest of src/repro: exports must be byte-deterministic, so the obs
    # tree must satisfy the determinism pack with no findings at all —
    # not even suppressed ones (a suppression there would mean a wall
    # clock or entropy source one comment away from the trace format).
    runner, findings = _run(["src/repro/obs"])
    assert findings == [], "\n".join(f.render() for f in findings)
    assert runner.files_scanned >= 7


def test_tests_and_examples_have_zero_unsuppressed_findings():
    runner, findings = _run(["tests", "benchmarks", "examples"])
    active = [f for f in findings if not f.suppressed]
    assert active == [], "\n".join(f.render() for f in active)
    # pyproject's [tool.simlint] exclude keeps the deliberately-bad
    # fixtures out of the self-check.
    assert not any("data/lint" in f.path.replace(os.sep, "/")
                   for f in findings)
    assert runner.files_scanned >= 40
