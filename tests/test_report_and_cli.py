"""Smoke tests for report renderers and the `python -m repro` CLI."""

import pytest

from repro.analysis.stats import BoxStats, LinearFit
from repro.content.keywords import Keyword
from repro.core.cache_detect import CacheDetectionResult
from repro.core.compare import compare_services
from repro.core.factoring import DistancePoint, FetchFactoring
from repro.experiments import report
from repro.experiments.ablation import (
    CacheAblationResult,
    IdleResetAblationResult,
    LossAblationResult,
    LossSweepPoint,
    PlacementAblationResult,
    PlacementPoint,
    SplitTcpAblationResult,
)
from repro.experiments.caching import CachingExperimentResult
from repro.experiments.dataset_a import Fig6Result, Fig7Result, Fig8Result
from repro.experiments.fig3 import Fig3Result, KeywordSeries
from repro.experiments.fig9 import Fig9Result, Fig9ServiceResult
from repro.experiments.keyword_effects import (
    KeywordEffect,
    KeywordEffectsResult,
    render_keyword_effects,
)
from repro.experiments.residential import (
    AccessProfileRow,
    ResidentialResult,
    render_residential,
)
from repro.experiments.validation import ValidationResult
from repro.core.bounds import BoundSample, BoundsReport
from repro.testbed.scenario import Scenario

from .test_core_inference import make_metric


def kw(text, pop=0.5, cx=0.5):
    return Keyword(text=text, popularity=pop, complexity=cx)


# ---------------------------------------------------------------------------
# renderers on synthetic results
# ---------------------------------------------------------------------------
def test_render_fig3():
    series = {}
    for text, base in (("easy", 0.1), ("hard", 0.4)):
        entry = KeywordSeries(kw(text))
        entry.tstatic = [0.02] * 20
        entry.tdynamic = [base] * 20
        series[text] = entry
    text = report.render_fig3(Fig3Result(service="svc", series=series))
    assert "easy" in text and "hard" in text
    assert "separation ratio" in text


def test_render_fig6_7_8():
    fig6 = Fig6Result(cdfs={"a": [(0.01, 0.5), (0.02, 1.0)],
                            "b": [(0.05, 1.0)]},
                      under_20ms={"a": 0.8, "b": 0.5})
    text = report.render_fig6(fig6)
    assert "80%" in text and "50%" in text

    metrics_a = [make_metric(0.005, 0.02, 0.3, service="a")
                 for _ in range(5)]
    metrics_b = [make_metric(0.030, 0.01, 0.05, service="b")
                 for _ in range(5)]
    comparison = compare_services({"a": metrics_a, "b": metrics_b})
    fig7 = Fig7Result(tstatic={"a": [(0.005, 0.02)]},
                      tdynamic={"a": [(0.005, 0.3)]},
                      comparison=comparison)
    text = report.render_fig7(fig7)
    assert "paradox" in text

    box = BoxStats(0.1, 0.2, 0.3, 0.4, 0.5)
    fig8 = Fig8Result(boxes={"a": [("node-%02d" % i, box)
                                   for i in range(12)]},
                      comparison=comparison)
    text = report.render_fig8(fig8)
    assert "2 more nodes" in text


def test_render_fig9():
    factoring = FetchFactoring(
        points=(DistancePoint("fe-a", 100, 0.26, 10),
                DistancePoint("fe-b", 300, 0.28, 10)),
        fit=LinearFit(slope=0.0001, intercept=0.25, r_squared=0.9, n=20))
    panel = Fig9ServiceResult(service=Scenario.BING,
                              backend_name="be-x", factoring=factoring)
    google_panel = Fig9ServiceResult(
        service=Scenario.GOOGLE, backend_name="be-y",
        factoring=FetchFactoring(
            points=(DistancePoint("fe-c", 200, 0.04, 10),
                    DistancePoint("fe-d", 500, 0.06, 10)),
            fit=LinearFit(slope=0.00008, intercept=0.034,
                          r_squared=0.95, n=20)))
    result = Fig9Result(panels={Scenario.BING: panel,
                                Scenario.GOOGLE: google_panel})
    text = report.render_fig9(result)
    assert "intercept ratio" in text
    assert result.intercept_ratio() == pytest.approx(0.25 / 0.034)
    assert result.slopes_similar()


def test_render_caching_and_validation():
    detection = CacheDetectionResult(
        median_same=0.25, median_distinct=0.3, ks_statistic=0.2,
        p_value=0.2, caching_detected=False)
    caching = CachingExperimentResult(
        service="svc", caching_enabled_in_simulator=False,
        detection=detection, same_samples=10, distinct_samples=10)
    assert "NOT" in report.render_caching(caching)

    bounds = BoundsReport(samples=[
        BoundSample("q1", 0.1, 0.15, 0.2, 0.01)])
    validation = ValidationResult(service="svc", bounds=bounds,
                                  proxy_errors=[(0.01, 0.02)])
    text = report.render_validation(validation)
    assert "100.0%" in text


def test_render_ablations():
    split = SplitTcpAblationResult(service="svc", split_median=0.4,
                                   direct_median=0.6, samples=10)
    assert "1.50x" in report.render_split_tcp(split)

    cache = CacheAblationResult(service="svc", ttfb_cached=0.02,
                                ttfb_uncached=0.3, overall_cached=0.4,
                                overall_uncached=0.45)
    assert "TTFB" in report.render_cache_ablation(cache)

    placement = PlacementAblationResult(service="svc", points=[
        PlacementPoint(0.3, 0.02, 0.35),
        PlacementPoint(0.9, 0.005, 0.34)])
    assert "coverage" in report.render_placement(placement)

    idle = IdleResetAblationResult(service="svc",
                                   warm_tfetch_median=0.2,
                                   cold_tfetch_median=0.5, samples=10)
    assert "penalty=300.0ms" in report.render_idle_reset(idle)

    loss = LossAblationResult(service="svc", points=[
        LossSweepPoint(0.0, 0.4, 0.5),
        LossSweepPoint(0.03, 0.42, 0.9)])
    assert "grows with loss: True" in report.render_loss(loss)


def test_render_residential_and_keywords():
    rows = [AccessProfileRow("campus", "svc", 0.006, 0.9, 0.3, 0.35, 1.0),
            AccessProfileRow("mobile-3g", "svc", 0.15, 0.0, 0.4, 1.0,
                             0.3)]
    result = ResidentialResult(service="svc", rows=rows)
    text = render_residential(result)
    assert "campus" in text and "mobile-3g" in text
    assert result.rtts_degrade()
    assert result.placement_relevance_shrinks()
    assert result.row("campus").median_rtt == 0.006
    with pytest.raises(KeyError):
        result.row("nope")

    effects = KeywordEffectsResult(service="svc", effects=[
        KeywordEffect(kw("cheap", pop=0.9, cx=0.1), 0.15, 5),
        KeywordEffect(kw("costly query words", pop=0.1, cx=0.9), 0.45,
                      5)])
    effects.word_count_rho = 0.9
    text = render_keyword_effects(effects)
    assert "cheapest" in text and "costliest" in text
    cheapest, costliest = effects.extremes()
    assert cheapest.keyword.text == "cheap"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_runs_single_experiment(capsys):
    from repro.__main__ import main
    exit_code = main(["fig4", "--scale", "tiny", "--seed", "1"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "completed in" in out


def test_cli_rejects_unknown_experiment():
    from repro.__main__ import main
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])


def test_cli_rejects_unknown_scale():
    from repro.__main__ import main
    with pytest.raises(SystemExit):
        main(["fig4", "--scale", "galactic"])
