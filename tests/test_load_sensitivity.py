"""Tests for the FE load model and the load-sensitivity experiment."""

import pytest

from repro.experiments.common import ExperimentScale
from repro.experiments.load_sensitivity import (
    LoadPoint,
    LoadSensitivityResult,
    render_load_sensitivity,
    run_load_sensitivity,
)
from repro.services.load import FrontEndLoadModel
from repro.sim import units
from repro.sim.randomness import RandomStreams


# ---------------------------------------------------------------------------
# the concurrency term of the load model
# ---------------------------------------------------------------------------
def test_concurrency_adds_linear_delay():
    model = FrontEndLoadModel(median_delay=0.010, sigma=0.0,
                              per_concurrent_delay=0.002)
    streams = RandomStreams(0)
    base = model.draw(streams, "s", concurrency=1)
    loaded = model.draw(streams, "s", concurrency=6)
    assert loaded - base == pytest.approx(0.002 * 5)


def test_concurrency_default_is_free():
    model = FrontEndLoadModel(median_delay=0.010, sigma=0.0)
    streams = RandomStreams(0)
    assert model.draw(streams, "s", concurrency=1) == \
        model.draw(streams, "s", concurrency=50)


def test_per_concurrent_validation():
    with pytest.raises(ValueError):
        FrontEndLoadModel(per_concurrent_delay=-0.001)


# ---------------------------------------------------------------------------
# FE concurrency accounting
# ---------------------------------------------------------------------------
def test_fe_tracks_and_releases_concurrency():
    from repro.content.keywords import Keyword
    from repro.measure.emulator import QueryEmulator
    from repro.testbed.scenario import Scenario, ScenarioConfig

    scenario = Scenario(ScenarioConfig(seed=40, vantage_count=6))
    vp = scenario.vantage_points[0]
    frontend, _ = scenario.connect_default(Scenario.BING, vp)
    emulator = QueryEmulator(scenario, vp)
    keyword = Keyword(text="concurrency probe", popularity=0.5,
                      complexity=0.5)
    for _ in range(3):
        emulator.submit(Scenario.BING, frontend, keyword)
    scenario.sim.run()
    assert frontend.peak_concurrency >= 2     # overlapped in flight
    assert frontend.active_requests == 0      # all released at the end


# ---------------------------------------------------------------------------
# the experiment
# ---------------------------------------------------------------------------
def test_load_sensitivity_shapes():
    result = run_load_sensitivity(
        ExperimentScale.tiny(seed=1),
        background_levels=(0, 12), probe_queries=18)
    assert len(result.points) == 2
    assert result.points[1].peak_concurrency > \
        result.points[0].peak_concurrency
    assert result.tstatic_inflation() > units.ms(5)
    text = render_load_sensitivity(result)
    assert "Tstatic inflation" in text


def test_load_result_helpers():
    result = LoadSensitivityResult(service="svc", fe_name="fe", points=[
        LoadPoint(0, 2, 0.020, 0.030, 0.25),
        LoadPoint(10, 9, 0.045, 0.090, 0.30)])
    assert result.tstatic_inflation() == pytest.approx(0.025)
    assert result.variability_grows()
