"""simflow effect inference: lattice laws, skeletons, and the
replication-parity acceptance criteria on the real source tree.

The acceptance tests lint a copy of ``src/repro`` so they can delete a
single replication line from the fast-path manager and watch EFF001
name the orphaned signature — the contract ISSUE.md specifies.
"""

import ast
import os
import shutil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import LintConfig, LintRunner
from repro.lint.effectflow import join
from repro.lint.project import _str_skeleton
from repro.lint.rng_lineage import _patterns_collide

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_TREE = os.path.join(REPO_ROOT, "src", "repro")
MANAGER_REL = os.path.join("sim", "replay", "manager.py")


# ---------------------------------------------------------------------------
# join lattice laws
# ---------------------------------------------------------------------------
_effects = st.builds(
    lambda kind, sig, detail: (kind, sig, detail),
    st.sampled_from(["log", "call", "port", "metric", "cache", "rng"]),
    st.text(alphabet="abc_[]#*/", min_size=1, max_size=8),
    st.sampled_from(["", "sim", "host", "keyed", "shared"]),
)
_summaries = st.frozensets(_effects, max_size=6)


@settings(max_examples=200, deadline=None)
@given(_summaries, _summaries, _summaries)
def test_join_is_associative(a, b, c):
    assert join(join(a, b), c) == join(a, join(b, c))


@settings(max_examples=200, deadline=None)
@given(_summaries, _summaries)
def test_join_is_commutative(a, b):
    assert join(a, b) == join(b, a)


@settings(max_examples=200, deadline=None)
@given(_summaries)
def test_join_is_idempotent(a):
    assert join(a, a) == frozenset(a)


@settings(max_examples=200, deadline=None)
@given(_summaries, _summaries)
def test_join_is_monotone(a, b):
    merged = join(a, b)
    assert frozenset(a) <= merged and frozenset(b) <= merged


def test_join_of_nothing_is_bottom():
    assert join() == frozenset()


# ---------------------------------------------------------------------------
# key-namespace skeletons and collision
# ---------------------------------------------------------------------------
def _skel(source):
    return _str_skeleton(ast.parse(source, mode="eval").body)


def test_skeleton_of_percent_format():
    assert _skel('"cache/tier/%s" % label') == ["cache/tier/*", ["label"]]


def test_skeleton_of_fstring_records_hole_tokens():
    skel, tokens = _skel('f"run/{shard.index}#{n}"')
    assert skel == "run/*#*"
    assert set(tokens) == {"shard", "index", "n"}


def test_skeleton_of_fully_dynamic_expr_is_none():
    assert _skel("name") is None


@pytest.mark.parametrize("a,b,expected", [
    ("pool/*", "pool/stream/*", True),   # star swallows the subspace
    ("pool/*", "pool/stream/x", True),
    ("lane#*", "seq/run#*", False),      # literal prefixes differ
    ("a#*", "a#*", True),
    ("tier/*", "stream/*", False),
    ("*", "#", False),                   # a hole never contains '#'
])
def test_patterns_collide(a, b, expected):
    assert _patterns_collide(a, b) is expected
    assert _patterns_collide(b, a) is expected


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet="ab/#*", min_size=1, max_size=10))
def test_pattern_collision_is_reflexive_without_hash_holes(pattern):
    # '*' matches itself (both expand to the same literal choice), so
    # any skeleton collides with itself.
    assert _patterns_collide(pattern, pattern)


# ---------------------------------------------------------------------------
# acceptance: parity on the real tree
# ---------------------------------------------------------------------------
def _lint(paths):
    runner = LintRunner(LintConfig())
    findings = runner.run_paths(paths)
    return [f for f in findings if not f.suppressed]


def test_real_tree_is_parity_clean():
    assert _lint([SRC_TREE]) == []


def test_deleting_a_replication_line_trips_eff001(tmp_path):
    tree = str(tmp_path / "repro")
    shutil.copytree(SRC_TREE, tree)
    manager = os.path.join(tree, MANAGER_REL)
    with open(manager) as fh:
        text = fh.read()
    needle = "service.register_keywords([keyword])"
    assert needle in text
    with open(manager, "w") as fh:
        fh.write(text.replace(needle, "pass"))

    findings = _lint([tree])
    eff001 = [f for f in findings if f.rule == "EFF001"]
    assert eff001, "EFF001 must fire when a replication is deleted"
    assert any("register_keywords" in f.message for f in eff001)
    # The generated allowlist is now stale relative to the derivation.
    assert any(f.rule == "EFF004" for f in findings)
