"""Serial-vs-sharded observability equality (fingerprint style).

Companion to ``tests/test_parallel.py``: with tracing enabled, a
sharded campaign must hand back the *byte-identical* span snapshot the
serial campaign produces, and its sim-scope metrics must merge to the
serial values exactly.  Host-scope metrics (engine events, replay
stats) legitimately differ per shard and are excluded by scope.
"""

import hashlib
import json

import pytest

from repro import obs
from repro.content.keywords import Keyword
from repro.measure.driver import run_dataset_a, run_dataset_b
from repro.parallel import run_dataset_a_sharded, run_dataset_b_sharded
from repro.testbed.scenario import Scenario, ScenarioConfig

CONFIG = ScenarioConfig(seed=3, vantage_count=14,
                        keyed_service_draws=True)
KEYWORDS = [Keyword(text="obs shard parity", popularity=0.6,
                    complexity=0.4)]


@pytest.fixture(autouse=True)
def _obs_isolation():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def trace_fingerprint(trace):
    """Stable digest of a serialized span snapshot."""
    payload = json.dumps(trace, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _serial_a():
    obs.reset()
    return run_dataset_a(Scenario(CONFIG), KEYWORDS, repeats=2,
                         interval=5.0)


def _sharded_a(processes):
    obs.reset()
    return run_dataset_a_sharded(Scenario(CONFIG), KEYWORDS, repeats=2,
                                 interval=5.0, shards=3,
                                 processes=processes)


def _assert_obs_parity(serial, sharded):
    assert serial.trace and sharded.trace
    assert trace_fingerprint(serial.trace) == \
        trace_fingerprint(sharded.trace)
    serial_sim = serial.obs_metrics.scoped(obs.SCOPE_SIM)
    sharded_sim = sharded.obs_metrics.scoped(obs.SCOPE_SIM)
    assert serial_sim.counters == sharded_sim.counters
    assert serial_sim.gauges == sharded_sim.gauges
    # Histogram states carry exact Fraction sums: == here means the
    # merge reproduced the serial sums bit for bit, not approximately.
    assert serial_sim.histograms == sharded_sim.histograms


def test_dataset_a_sharded_trace_and_metrics_match_serial():
    obs.enable()
    serial = _serial_a()
    sharded = _sharded_a(processes=3)
    assert [s.query_id for s in sharded.sessions] == \
        [s.query_id for s in serial.sessions]
    _assert_obs_parity(serial, sharded)


def test_dataset_a_inline_fallback_does_not_double_count():
    # processes=1 makes map_shards run the shard campaigns inline in
    # this process; the rollback/absorb protocol must dedup exactly.
    obs.enable()
    serial = _serial_a()
    inline = _sharded_a(processes=1)
    _assert_obs_parity(serial, inline)
    # The live runtime holds the merged capture exactly once.
    session_spans = [span for span in obs.runtime.tracer.spans
                     if span.name == "session"]
    assert len(session_spans) == len(inline.sessions)


def test_dataset_b_sharded_capture_is_structurally_equivalent():
    # Dataset B is the approximate sharding (every VP shares one FE, so
    # shards don't see each other's FE-BE load; see
    # run_dataset_b_sharded's docstring) — tests/test_parallel.py
    # fingerprints Dataset A only, and so does the exact test above.
    # Here we assert the obs merge machinery still returns a complete,
    # consistent capture: one session span per session, identical span
    # *structure*, and exact session-count metrics.
    obs.enable()
    scenario = Scenario(CONFIG)
    frontend = scenario.default_frontend(Scenario.GOOGLE,
                                         scenario.vantage_points[0])
    obs.reset()
    serial = run_dataset_b(scenario, Scenario.GOOGLE, frontend,
                           KEYWORDS[0], repeats=2, interval=8.0)
    obs.reset()
    sharded = run_dataset_b_sharded(Scenario(CONFIG), Scenario.GOOGLE,
                                    frontend.node.name, KEYWORDS[0],
                                    repeats=2, interval=8.0, shards=3,
                                    processes=3)

    def shape(trace):
        return sorted((span["attrs"]["query_id"],
                       tuple(sorted(child["name"]
                                    for child in span["children"])),
                       tuple(name for _, name in span["events"]))
                      for span in trace)

    assert len(sharded.trace) == len(sharded.sessions)
    assert shape(serial.trace) == shape(sharded.trace)
    serial_sim = serial.obs_metrics.scoped(obs.SCOPE_SIM)
    sharded_sim = sharded.obs_metrics.scoped(obs.SCOPE_SIM)
    assert serial_sim.counters == sharded_sim.counters


def test_sharded_with_tracing_disabled_stays_dark():
    sharded = _sharded_a(processes=3)
    assert sharded.trace is None
    assert sharded.obs_metrics is None
    assert obs.runtime.tracer.spans == []


def test_host_scope_metrics_count_per_shard_work():
    obs.enable()
    sharded = _sharded_a(processes=3)
    host = sharded.obs_metrics.scoped(obs.SCOPE_HOST)
    # Each of the 3 shards ran its own campaign (warm-up re-simulated),
    # so the per-process campaign counter sums across shards.
    assert host.counters["campaign.runs.dataset_a"] == 3
    assert host.counters["engine.events_processed"] > 0
