"""Integration tests: every figure runner must reproduce the paper's
qualitative shape at reduced (tiny) scale."""

import pytest

from repro.experiments import (
    ExperimentScale,
    run_cache_ablation,
    run_caching_experiment,
    run_dataset_a_experiment,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_interactive,
    run_loss_ablation,
    run_placement_ablation,
    run_split_tcp_ablation,
    run_validation,
)
from repro.sim import units
from repro.testbed.scenario import Scenario

SCALE = ExperimentScale.tiny(seed=1)


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig3():
    return run_fig3(SCALE)


def test_fig3_tdynamic_separates_by_keyword(fig3):
    medians = fig3.tdynamic_medians()
    assert len(medians) == 4
    spread = max(medians.values()) - min(medians.values())
    assert spread > units.ms(100)


def test_fig3_tstatic_insensitive_to_keyword(fig3):
    medians = fig3.tstatic_medians()
    spread = max(medians.values()) - min(medians.values())
    assert spread < units.ms(30)
    assert fig3.separation_ratio() > 5


def test_fig3_complex_keywords_cost_more(fig3):
    by_complexity = sorted(fig3.series.values(),
                           key=lambda s: s.keyword.complexity)
    dynamic_medians = [sorted(s.tdynamic)[len(s.tdynamic) // 2]
                       for s in by_complexity]
    assert dynamic_medians[-1] > dynamic_medians[0]


def test_fig3_smoothing_preserves_length(fig3):
    series = next(iter(fig3.series.values()))
    smoothed = series.smoothed(window=10)
    assert len(smoothed.tdynamic) == len(series.tdynamic)


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig4():
    return run_fig4(SCALE)


def test_fig4_gap_shrinks_and_merges(fig4):
    assert fig4.gap_shrinks_with_rtt()
    # Clearly separated at the smallest RTT...
    assert fig4.rows[0].gap > units.ms(100)
    # ... and lumped together at the largest (paper: Bing threshold
    # 100-200 ms, so both 160 ms and 243 ms rows are merged).
    assert fig4.rows[-1].merged


def test_fig4_small_rtt_shows_distinct_bursts(fig4):
    row = fig4.rows[0]
    assert len(row.display_bursts) >= 2
    assert not row.merged


def test_fig4_timelines_start_with_syn(fig4):
    for row in fig4.rows:
        offsets = row.event_offsets()
        assert offsets[0][1] == "out"
        assert offsets[0][0] == pytest.approx(0.0, abs=1e-9)


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig5():
    return run_fig5(SCALE)


def test_fig5_thresholds_in_paper_bands(fig5):
    thresholds = fig5.thresholds_ms()
    # Paper: Google 50-100 ms, Bing 100-200 ms (we allow band slack).
    assert 30 <= thresholds[Scenario.GOOGLE] <= 110
    assert 100 <= thresholds[Scenario.BING] <= 260
    assert thresholds[Scenario.BING] > thresholds[Scenario.GOOGLE]


def test_fig5_tdynamic_flat_then_linear(fig5):
    for curves in fig5.curves.values():
        binned = curves.binned("tdynamic")
        assert len(binned) >= 3
        low = binned[0][1]
        high = binned[-1][1]
        # The high-RTT end exceeds the fetch-bound plateau.
        assert high > low
        assert curves.regimes is not None


def test_fig5_tdelta_decreasing(fig5):
    for curves in fig5.curves.values():
        binned = curves.binned("tdelta")
        # First bin strictly positive, last bin ~zero.
        assert binned[0][1] > units.ms(10)
        assert binned[-1][1] < units.ms(10)


def test_fig5_bing_slower_than_google(fig5):
    google = dict(fig5.curves[Scenario.GOOGLE].binned("tdynamic"))
    bing = dict(fig5.curves[Scenario.BING].binned("tdynamic"))
    shared = sorted(set(google) & set(bing))
    assert shared
    assert all(bing[b] > google[b] for b in shared)


# ---------------------------------------------------------------------------
# Figures 6-8 (one Dataset-A campaign)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def dataset_a():
    return run_dataset_a_experiment(SCALE)


def test_fig6_bing_fes_closer(dataset_a):
    result = run_fig6(experiment=dataset_a)
    assert result.under_20ms[Scenario.BING] > \
        result.under_20ms[Scenario.GOOGLE]
    assert result.under_20ms[Scenario.BING] >= 0.6
    assert 0.3 <= result.under_20ms[Scenario.GOOGLE] <= 0.9
    for cdf in result.cdfs.values():
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)


def test_fig7_paradox(dataset_a):
    result = run_fig7(experiment=dataset_a)
    comparison = result.comparison
    assert comparison.closer_frontends() == Scenario.BING
    assert comparison.faster_overall() == Scenario.GOOGLE
    assert comparison.paradox_present
    # Bing both slower and more variable in Tdynamic.
    rows = {r["service"]: r for r in comparison.rows()}
    assert rows[Scenario.BING]["tdynamic_median_ms"] > \
        rows[Scenario.GOOGLE]["tdynamic_median_ms"]
    assert rows[Scenario.BING]["tdynamic_std_ms"] > \
        rows[Scenario.GOOGLE]["tdynamic_std_ms"]


def test_fig7_scatter_has_both_services(dataset_a):
    result = run_fig7(experiment=dataset_a)
    for service in (Scenario.BING, Scenario.GOOGLE):
        assert len(result.tstatic[service]) > 10
        assert len(result.tdynamic[service]) > 10


def test_fig8_overall_delays(dataset_a):
    result = run_fig8(experiment=dataset_a)
    assert result.comparison.more_variable() == Scenario.BING
    bing_boxes = dict(result.boxes[Scenario.BING])
    google_boxes = dict(result.boxes[Scenario.GOOGLE])
    shared_nodes = set(bing_boxes) & set(google_boxes)
    assert len(shared_nodes) >= 10
    slower_on_bing = sum(
        1 for node in shared_nodes
        if bing_boxes[node].median > google_boxes[node].median)
    assert slower_on_bing / len(shared_nodes) > 0.8


# ---------------------------------------------------------------------------
# Figure 9
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig9():
    return run_fig9(SCALE)


def test_fig9_intercepts_match_paper(fig9):
    bing = fig9.panels[Scenario.BING]
    google = fig9.panels[Scenario.GOOGLE]
    # Paper: ~260 ms vs ~34 ms.
    assert 180 <= bing.intercept_ms <= 340
    assert 20 <= google.intercept_ms <= 60
    assert 4 <= fig9.intercept_ratio() <= 14


def test_fig9_slopes_positive_and_similar(fig9):
    for panel in fig9.panels.values():
        assert panel.slope_ms_per_mile > 0.02
        assert panel.slope_ms_per_mile < 0.2
    assert fig9.slopes_similar(tolerance=0.6)


def test_fig9_has_multiple_fe_points(fig9):
    for panel in fig9.panels.values():
        assert len(panel.factoring.points) >= 2


# ---------------------------------------------------------------------------
# Section 3 caching
# ---------------------------------------------------------------------------
def test_caching_not_detected_on_real_deployment():
    result = run_caching_experiment(SCALE)
    assert not result.detection.caching_detected
    assert result.detector_correct


def test_caching_detected_on_counterfactual():
    result = run_caching_experiment(SCALE, fe_caches_results=True)
    assert result.detection.caching_detected
    assert result.detector_correct
    assert result.detection.median_ratio < 0.6


# ---------------------------------------------------------------------------
# Eq. 1 validation
# ---------------------------------------------------------------------------
def test_bounds_validation_holds():
    result = run_validation(SCALE)
    assert result.bounds.n > 50
    assert result.bounds.both_fraction == 1.0
    # At low RTT, Tdynamic is a tight Tfetch proxy (paper Sec. 5).
    assert result.proxy_error_below_rtt(units.ms(40)) < 0.10


# ---------------------------------------------------------------------------
# Section 6 interactive search
# ---------------------------------------------------------------------------
def test_interactive_fits_model():
    result = run_interactive(SCALE)
    assert result.queries >= 15
    assert result.distinct_connections() == result.queries
    assert result.bounds.both_fraction == 1.0
    # Correlated follow-up queries do not get slower.
    assert result.tdynamic_trend() <= units.ms(10)


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------
def test_split_tcp_wins_for_remote_clients():
    result = run_split_tcp_ablation(SCALE)
    assert result.speedup > 1.15


def test_cache_ablation_ttfb():
    result = run_cache_ablation(SCALE)
    # The FE cache saves at least the fetch time on the first byte.
    assert result.ttfb_improvement > units.ms(100)
    assert result.overall_uncached >= result.overall_cached


def test_placement_ablation_diminishing_returns():
    result = run_placement_ablation(SCALE)
    assert len(result.points) == 3
    # Density improves RTT monotonically...
    rtts = [p.median_rtt for p in result.points]
    assert rtts[0] > rtts[-1]
    # ...but the overall delay saturates: the total gain is well below
    # the fetch time (the paper's placement/fetch trade-off).
    assert result.overall_gain() < units.ms(120)


def test_loss_ablation_split_advantage_grows():
    result = run_loss_ablation(SCALE)
    assert result.advantage_grows_with_loss()
    assert result.points[-1].split_advantage > \
        result.points[0].split_advantage + units.ms(50)
