"""Reusable application stubs for transport-layer tests."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.tcp.connection import Connection, TcpApp


class CollectorApp(TcpApp):
    """Client-side app that records everything that happens."""

    def __init__(self, request: bytes = b"", close_after_send: bool = False):
        self.request = request
        self.close_after_send = close_after_send
        self.received = bytearray()
        self.established_at: Optional[float] = None
        self.closed_at: Optional[float] = None
        self.errors: List[str] = []
        self.data_times: List[float] = []

    def on_established(self, conn: Connection) -> None:
        self.established_at = conn.sim.now
        if self.request:
            conn.send(self.request)
            if self.close_after_send:
                conn.close()

    def on_data(self, conn: Connection, data: bytes) -> None:
        self.received.extend(data)
        self.data_times.append(conn.sim.now)

    def on_close(self, conn: Connection) -> None:
        self.closed_at = conn.sim.now

    def on_error(self, conn: Connection, message: str) -> None:
        self.errors.append(message)


class EchoServerApp(TcpApp):
    """Echoes every received byte back to the sender."""

    def on_data(self, conn: Connection, data: bytes) -> None:
        conn.send(data)

    def on_close(self, conn: Connection) -> None:
        conn.close()


class RespondApp(TcpApp):
    """Sends a fixed response once ``trigger_bytes`` have arrived.

    Optionally closes the connection after responding, and can delay the
    response through the simulator to model server think time.
    """

    def __init__(self, response: bytes, trigger_bytes: int = 1,
                 close_after: bool = False, delay: float = 0.0):
        self.response = response
        self.trigger_bytes = trigger_bytes
        self.close_after = close_after
        self.delay = delay
        self.received = bytearray()
        self.responded = False

    def on_data(self, conn: Connection, data: bytes) -> None:
        self.received.extend(data)
        if not self.responded and len(self.received) >= self.trigger_bytes:
            self.responded = True
            if self.delay > 0:
                conn.sim.schedule(self.delay, self._respond, conn)
            else:
                self._respond(conn)

    def _respond(self, conn: Connection) -> None:
        conn.send(self.response)
        if self.close_after:
            conn.close()


class SinkApp(TcpApp):
    """Accepts and counts bytes, nothing else."""

    def __init__(self):
        self.byte_count = 0
        self.closed = False

    def on_data(self, conn: Connection, data: bytes) -> None:
        self.byte_count += len(data)

    def on_close(self, conn: Connection) -> None:
        self.closed = True


def make_payload(size: int, tag: bytes = b"") -> bytes:
    """Deterministic, position-dependent payload for integrity checks."""
    pattern = bytearray()
    counter = 0
    while len(pattern) < size:
        pattern.extend(b"%s%08d|" % (tag, counter))
        counter += 1
    return bytes(pattern[:size])
