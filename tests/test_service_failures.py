"""Failure-path tests: 404 routing, back-end outages, DNS variance."""

import pytest

from repro.content.keywords import Keyword
from repro.http.client import HttpFetch, RequestHooks
from repro.http.message import HttpRequest
from repro.measure.emulator import QueryEmulator
from repro.net.address import Endpoint
from repro.services.backend import BACKEND_PORT
from repro.services.frontend import FRONTEND_PORT
from repro.testbed.scenario import Scenario, ScenarioConfig


def kw(text="failure probe"):
    return Keyword(text=text, popularity=0.5, complexity=0.5)


@pytest.fixture
def scenario():
    return Scenario(ScenarioConfig(seed=17, vantage_count=6))


def linked_frontend(scenario, vp, service_name=Scenario.GOOGLE):
    frontend, _ = scenario.connect_default(service_name, vp)
    return frontend


def test_frontend_404_for_unknown_path(scenario):
    vp = scenario.vantage_points[0]
    frontend = linked_frontend(scenario, vp)
    fetch = HttpFetch(scenario.client_host(vp),
                      Endpoint(frontend.node.name, FRONTEND_PORT),
                      HttpRequest(path="/favicon.ico"))
    scenario.sim.run()
    assert fetch.complete
    assert fetch.response.status == 404
    assert b"/favicon.ico" in fetch.response.body
    assert frontend.requests_served == 0  # search counter untouched


def test_backend_404_for_unknown_path(scenario):
    vp = scenario.vantage_points[0]
    service = scenario.service(Scenario.GOOGLE)
    frontend = linked_frontend(scenario, vp)
    backend = service.backend_for_frontend(frontend)
    delay = vp.one_way_delay_to(backend.location, None)
    scenario.topology.connect(vp.name, backend.node.name, delay=delay)
    fetch = HttpFetch(scenario.client_host(vp),
                      Endpoint(backend.node.name, BACKEND_PORT),
                      HttpRequest(path="/admin"))
    scenario.sim.run()
    assert fetch.complete
    assert fetch.response.status == 404
    assert backend.queries_served == 0


def test_backend_outage_produces_502(scenario):
    """Kill the FE-BE path before a query: the user gets a 502-ish
    response instead of a hang."""
    vp = scenario.vantage_points[0]
    service = scenario.service(Scenario.GOOGLE)
    frontend = linked_frontend(scenario, vp)
    backend = service.backend_for_frontend(frontend)
    # Let the FE's pool establish first, then cut the link both ways.
    scenario.sim.run()
    fe_node = scenario.topology.node(frontend.node.name)
    be_node = scenario.topology.node(backend.node.name)
    fe_node.links[backend.node.name].fault_filter = lambda p, i: True
    be_node.links[frontend.node.name].fault_filter = lambda p, i: True

    emulator = QueryEmulator(scenario, vp)
    session = emulator.submit(Scenario.GOOGLE, frontend, kw())
    scenario.sim.run(until=scenario.sim.now + 600.0)
    # The fetch fails after retry exhaustion; the FE finishes the
    # response (static-only or 502) rather than hanging forever.
    assert session.completed_at is not None


def test_dns_variance_spreads_mappings():
    deterministic = Scenario(ScenarioConfig(seed=21, vantage_count=30))
    noisy = Scenario(ScenarioConfig(seed=21, vantage_count=30,
                                    dns_variance=0.5))
    changed = 0
    for det_vp, noisy_vp in zip(deterministic.vantage_points,
                                noisy.vantage_points):
        det_fe = deterministic.default_frontend(Scenario.BING, det_vp)
        noisy_fe = noisy.default_frontend(Scenario.BING, noisy_vp)
        if det_fe.node.name != noisy_fe.node.name:
            changed += 1
    assert changed >= 5  # about half should move off the nearest


def test_dns_variance_is_deterministic_per_vp():
    scenario = Scenario(ScenarioConfig(seed=22, vantage_count=10,
                                       dns_variance=0.5))
    vp = scenario.vantage_points[0]
    first = scenario.default_frontend(Scenario.BING, vp)
    again = scenario.default_frontend(Scenario.BING, vp)
    assert first.node.name == again.node.name


def test_dns_variance_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(dns_variance=1.5)
