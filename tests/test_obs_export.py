"""Exporter contracts: JSONL schema v1 lock, Chrome trace, report CLI.

The JSONL span/metric schema is **v1 and locked**: the exact header
keys, span-record field set and metric-record keys asserted here are a
compatibility contract (the same way ``tests/test_lint_cli.py`` locks
the lint JSON schema).  Changing any of them requires bumping
``repro.obs.export.SCHEMA_VERSION`` and updating this file in the same
commit.
"""

import json

import pytest

from repro import obs
from repro.content.keywords import Keyword
from repro.measure.driver import run_dataset_a
from repro.obs import runtime
from repro.obs.export import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SPAN_FIELDS,
    chrome_trace_events,
    flatten_spans,
    jsonl_lines,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.testbed.scenario import Scenario, ScenarioConfig


@pytest.fixture(autouse=True)
def _obs_isolation():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def capture():
    """One small traced campaign shared by every test in this file."""
    obs.disable()
    obs.reset()
    obs.enable()
    scenario = Scenario(ScenarioConfig(seed=11, vantage_count=3,
                                       keyed_service_draws=True,
                                       deterministic_services=True))
    keyword = Keyword(text="export schema", popularity=0.6,
                      complexity=0.5)
    dataset = run_dataset_a(scenario, [keyword], repeats=2, interval=4.0,
                            services=[Scenario.GOOGLE])
    trace = dataset.trace
    snapshot = dataset.obs_metrics
    obs.disable()
    obs.reset()
    return trace, snapshot


# ---------------------------------------------------------------------------
# JSONL schema v1 lock
# ---------------------------------------------------------------------------
def test_jsonl_header_is_schema_v1(capture, tmp_path):
    trace, snapshot = capture
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(path, trace, snapshot)
    with open(path, "r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
    assert header == {
        "kind": "header",
        "schema": "repro.obs",
        "version": 1,
        "span_count": header["span_count"],
        "metric_count": header["metric_count"],
    }
    assert set(header) == {"kind", "schema", "version", "span_count",
                           "metric_count"}
    assert (SCHEMA_NAME, SCHEMA_VERSION) == ("repro.obs", 1)
    assert header["span_count"] > len(trace)      # children flattened in
    assert header["metric_count"] > 0


def test_jsonl_span_records_carry_exactly_the_locked_fields(capture):
    trace, snapshot = capture
    lines = jsonl_lines(trace, snapshot)
    spans = [json.loads(line) for line in lines[1:]
             if json.loads(line)["kind"] == "span"]
    assert spans
    for record in spans:
        assert tuple(sorted(record)) == tuple(sorted(SPAN_FIELDS))
    # Dense DFS-preorder ids with valid parent pointers.
    assert [record["id"] for record in spans] == list(range(len(spans)))
    for record in spans:
        if record["parent"] is not None:
            assert 0 <= record["parent"] < record["id"]
    roots = [record for record in spans if record["parent"] is None]
    assert len(roots) == len(trace)
    assert all(record["name"] == "session" for record in roots)


def test_jsonl_metric_records_schema(capture):
    trace, snapshot = capture
    records = snapshot.as_records()
    assert records
    for record in records:
        assert record["kind"] == "metric"
        if record["type"] in ("counter", "gauge"):
            assert set(record) == {"kind", "type", "name", "scope",
                                   "value"}
        else:
            assert record["type"] == "histogram"
            assert set(record) == {"kind", "type", "name", "scope",
                                   "count", "sum", "min", "max",
                                   "bounds", "counts"}
    # Deterministic order: sorted by name within each type group.
    by_type = {}
    for record in records:
        by_type.setdefault(record["type"], []).append(record["name"])
    for names in by_type.values():
        assert names == sorted(names)
    assert "campaign.sessions.completed" in by_type["counter"]


def test_jsonl_round_trips_and_rejects_foreign_files(capture, tmp_path):
    trace, snapshot = capture
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(path, trace, snapshot)
    payload = read_jsonl(path)
    assert payload["header"]["span_count"] == len(payload["spans"])
    assert payload["header"]["metric_count"] == len(payload["metrics"])
    assert payload["spans"] == flatten_spans(trace)

    headerless = str(tmp_path / "other.jsonl")
    with open(headerless, "w", encoding="utf-8") as handle:
        handle.write('{"kind":"span"}\n')
    with pytest.raises(ValueError, match="no header"):
        read_jsonl(headerless)

    future = str(tmp_path / "future.jsonl")
    with open(future, "w", encoding="utf-8") as handle:
        handle.write('{"kind":"header","schema":"repro.obs",'
                     '"version":99,"span_count":0,"metric_count":0}\n')
    with pytest.raises(ValueError, match="unsupported schema"):
        read_jsonl(future)


def test_jsonl_export_is_byte_deterministic(capture, tmp_path):
    trace, snapshot = capture
    first = "\n".join(jsonl_lines(trace, snapshot))
    second = "\n".join(jsonl_lines(trace, snapshot))
    assert first == second


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------
def test_chrome_trace_is_structurally_valid(capture, tmp_path):
    trace, snapshot = capture
    path = str(tmp_path / "chrome.json")
    write_chrome_trace(path, trace)
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert set(payload) == {"traceEvents", "displayTimeUnit"}
    events = payload["traceEvents"]
    assert events == chrome_trace_events(trace)

    by_phase = {}
    for event in events:
        by_phase.setdefault(event["ph"], []).append(event)
    # Metadata: one process name + one thread per vantage point.
    meta = by_phase["M"]
    assert meta[0]["args"]["name"] == "repro simulated campaign"
    thread_tids = sorted(e["tid"] for e in meta if e["name"] ==
                         "thread_name")
    assert thread_tids == list(range(1, len(thread_tids) + 1))
    # Complete events cover every span; durations are non-negative µs.
    assert len(by_phase["X"]) == len(flatten_spans(trace))
    for event in by_phase["X"]:
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        assert event["tid"] in thread_tids
    # Instant events mark the packet landmarks on the session threads.
    landmark_names = {e["name"] for e in by_phase["i"]}
    assert {"tb", "t1", "t2", "t3", "te"} <= landmark_names
    assert all(e["s"] == "t" for e in by_phase["i"])


# ---------------------------------------------------------------------------
# `repro report` CLI
# ---------------------------------------------------------------------------
def test_report_cli_summarizes_an_export(capture, tmp_path, capsys):
    from repro.__main__ import main
    trace, snapshot = capture
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(path, trace, snapshot)
    assert main(["report", path]) == 0
    out = capsys.readouterr().out
    assert "observability summary" in out
    assert "schema repro.obs v1" in out
    assert "session" in out
    assert "campaign.sessions.completed" in out


def test_report_cli_fails_cleanly_on_bad_input(tmp_path, capsys):
    from repro.__main__ import main
    missing = str(tmp_path / "does-not-exist.jsonl")
    assert main(["report", missing]) == 2
    assert "repro report:" in capsys.readouterr().out
