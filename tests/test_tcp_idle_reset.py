"""Tests for RFC 2861 idle-window reset (slow_start_after_idle)."""

import pytest

from repro.net.address import Endpoint
from repro.sim import units
from repro.tcp.config import TcpConfig
from repro.tcp.congestion import FixedWindowController

from .conftest import make_world
from .helpers import CollectorApp, EchoServerApp, make_payload

RTT = units.ms(40)


def warm_connection(world, client_config=None):
    """Open a connection and push one bulk exchange to grow cwnd."""
    world.server.listen(80, EchoServerApp)
    client = CollectorApp()
    conn = world.client.connect(Endpoint("server", 80), client)
    world.sim.run()
    conn.send(make_payload(50_000))
    world.sim.run()
    return conn, client


def test_idle_reset_collapses_cwnd():
    config = TcpConfig(slow_start_after_idle=True)
    world = make_world(rtt=RTT, client_config=config)
    conn, client = warm_connection(world)
    warm_cwnd = conn.cc.cwnd
    assert warm_cwnd > config.initial_cwnd_bytes
    # Go idle for far longer than the RTO, then send again.
    world.sim.schedule(30.0, conn.send, b"x")
    world.sim.run()
    assert conn.cc.cwnd <= config.initial_cwnd_bytes + config.mss


def test_no_reset_when_disabled():
    config = TcpConfig(slow_start_after_idle=False)
    world = make_world(rtt=RTT, client_config=config)
    conn, client = warm_connection(world)
    warm_cwnd = conn.cc.cwnd
    world.sim.schedule(30.0, conn.send, b"x")
    world.sim.run()
    assert conn.cc.cwnd >= warm_cwnd


def test_fixed_window_unaffected_by_idle_reset():
    config = TcpConfig(slow_start_after_idle=True,
                       fixed_window_bytes=64_000)
    world = make_world(rtt=RTT, client_config=config)
    conn, client = warm_connection(world)
    assert isinstance(conn.cc, FixedWindowController)
    world.sim.schedule(30.0, conn.send, b"x")
    world.sim.run()
    assert conn.cc.cwnd == 64_000


def test_short_idle_does_not_reset():
    config = TcpConfig(slow_start_after_idle=True)
    world = make_world(rtt=RTT, client_config=config)
    conn, client = warm_connection(world)
    warm_cwnd = conn.cc.cwnd
    # Idle for well under the RTO (min RTO 200 ms).
    world.sim.schedule(world.sim.now + 0.05 - world.sim.now,
                       conn.send, b"x")
    world.sim.run()
    assert conn.cc.cwnd >= warm_cwnd


def test_reset_transfer_is_slower_than_warm():
    """The end-to-end consequence: a post-idle burst takes extra RTTs."""
    durations = {}
    for reset in (False, True):
        config = TcpConfig(slow_start_after_idle=reset)
        world = make_world(rtt=units.ms(100), bandwidth=units.gbps(1),
                           client_config=config)
        conn, client = warm_connection(world)
        start = world.sim.now + 30.0
        world.sim.schedule(30.0, conn.send, make_payload(60_000))
        world.sim.run()
        durations[reset] = world.sim.now - start
    assert durations[True] > durations[False] + units.ms(100)


def test_fixed_window_config_validation():
    with pytest.raises(ValueError):
        TcpConfig(fixed_window_bytes=100)  # below one MSS
    config = TcpConfig(fixed_window_bytes=2920)
    assert config.fixed_window_bytes == 2920
