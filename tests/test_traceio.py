"""Tests for trace serialization (save/load query sessions)."""

import io

import pytest

from repro.analysis.boundary import BoundaryCalibration
from repro.content.keywords import Keyword
from repro.core.metrics import extract_all_calibrated
from repro.measure.emulator import QueryEmulator
from repro.measure.traceio import (
    TraceFormatError,
    load_sessions,
    read_sessions,
    render_tcpdump,
    save_sessions,
    write_sessions,
)
from repro.testbed.scenario import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def captured_sessions():
    scenario = Scenario(ScenarioConfig(seed=8, vantage_count=4))
    emulator = QueryEmulator(scenario, scenario.vantage_points[0],
                             store_payload=True)
    sessions = [emulator.submit_default(
        Scenario.GOOGLE, Keyword(text=t, popularity=0.4, complexity=0.4))
        for t in ("roundtrip one", "roundtrip two")]
    scenario.sim.run()
    assert all(s.complete for s in sessions)
    return sessions


def roundtrip(sessions):
    buffer = io.StringIO()
    write_sessions(sessions, buffer)
    buffer.seek(0)
    return list(read_sessions(buffer))


def test_roundtrip_preserves_metadata(captured_sessions):
    loaded = roundtrip(captured_sessions)
    assert len(loaded) == len(captured_sessions)
    for original, restored in zip(captured_sessions, loaded):
        assert restored.query_id == original.query_id
        assert restored.service == original.service
        assert restored.vp_name == original.vp_name
        assert restored.fe_name == original.fe_name
        assert restored.keyword == original.keyword
        assert restored.local_port == original.local_port
        assert restored.started_at == original.started_at
        assert restored.completed_at == original.completed_at
        assert restored.response_size == original.response_size
        assert restored.path_rtt == original.path_rtt
        assert restored.complete


def test_roundtrip_preserves_packet_events(captured_sessions):
    loaded = roundtrip(captured_sessions)
    for original, restored in zip(captured_sessions, loaded):
        assert len(restored.events) == len(original.events)
        for oe, re_ in zip(original.events, restored.events):
            assert re_.time == oe.time
            assert re_.direction == oe.direction
            assert re_.seq == oe.seq and re_.ack == oe.ack
            assert re_.payload_len == oe.payload_len
            assert re_.syn == oe.syn and re_.fin == oe.fin
            assert re_.ack_flag == oe.ack_flag
            assert re_.payload == oe.payload


def test_analysis_runs_on_reloaded_traces(captured_sessions):
    """The whole inference pipeline must work on deserialized traces."""
    loaded = roundtrip(captured_sessions)
    calibration = BoundaryCalibration.from_sessions(loaded)
    metrics = extract_all_calibrated(loaded, calibration)
    assert len(metrics) == len(loaded)
    for m in metrics:
        assert m.tdynamic >= m.tdelta >= 0


def test_save_and_load_files(captured_sessions, tmp_path):
    path = str(tmp_path / "trace.jsonl")
    written = save_sessions(captured_sessions, path)
    assert written == len(captured_sessions)
    loaded = load_sessions(path)
    assert [s.query_id for s in loaded] == \
        [s.query_id for s in captured_sessions]


def test_payloadless_sessions_roundtrip():
    scenario = Scenario(ScenarioConfig(seed=9, vantage_count=4))
    emulator = QueryEmulator(scenario, scenario.vantage_points[0],
                             store_payload=False)
    session = emulator.submit_default(
        Scenario.GOOGLE, Keyword(text="no payload", popularity=0.4,
                                 complexity=0.4))
    scenario.sim.run()
    (restored,) = roundtrip([session])
    assert all(e.payload is None for e in restored.events)
    assert sum(e.payload_len for e in restored.events) > 0


def test_truncated_file_detected(captured_sessions):
    buffer = io.StringIO()
    write_sessions(captured_sessions, buffer)
    lines = buffer.getvalue().splitlines()
    # Cut a few packet lines off the tail so the last session is short.
    truncated = "\n".join(lines[:-3])
    with pytest.raises(TraceFormatError):
        list(read_sessions(io.StringIO(truncated)))


def test_malformed_lines_detected():
    with pytest.raises(TraceFormatError):
        list(read_sessions(io.StringIO("not json\n")))
    with pytest.raises(TraceFormatError):
        list(read_sessions(io.StringIO('{"kind": "pkt"}\n')))
    with pytest.raises(TraceFormatError):
        list(read_sessions(io.StringIO('{"kind": "mystery"}\n')))


def test_wrong_version_rejected():
    header = ('{"kind": "session", "version": 99, "query_id": "q", '
              '"service": "s", "vp_name": "v", "fe_name": "f", '
              '"keyword": {"text": "t", "popularity": 0.1, '
              '"complexity": 0.1, "granularity": 1, "suggested": false}, '
              '"local_port": 1, "started_at": 0, "completed_at": 1, '
              '"failed": null, "response_size": 0, "path_rtt": 0.1, '
              '"n_events": 0}')
    with pytest.raises(TraceFormatError):
        list(read_sessions(io.StringIO(header + "\n")))


def test_render_tcpdump(captured_sessions):
    session = captured_sessions[0]
    text = render_tcpdump(session)
    lines = text.splitlines()
    assert lines[0].startswith("# session")
    assert session.query_id in lines[0]
    assert len(lines) == 1 + len(session.events)
    # First packet is the SYN at t=0.
    assert "[S]" in lines[1]
    assert lines[1].strip().startswith("0.000000")


def test_render_tcpdump_truncation(captured_sessions):
    session = captured_sessions[0]
    text = render_tcpdump(session, max_events=3)
    assert "more packets" in text
    assert len(text.splitlines()) == 5
