"""Tests for the service layer: back-end, front-end, deployment."""

import pytest

from repro.content.keywords import Keyword, KeywordCatalog
from repro.http.client import HttpFetch, RequestHooks
from repro.http.message import HttpRequest, build_query_path
from repro.net.address import Endpoint
from repro.net.geo import GeoPoint
from repro.net.topology import Topology
from repro.services.backend import KeywordRegistry
from repro.services.deployment import (
    ServiceDeployment,
    bing_akamai_profile,
    google_like_profile,
)
from repro.services.load import FrontEndLoadModel, ProcessingModel
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.tcp.host import TcpHost


# ---------------------------------------------------------------------------
# load models
# ---------------------------------------------------------------------------
def test_processing_model_mean_structure():
    model = ProcessingModel(base=0.1, complexity_weight=1.0,
                            popularity_discount=0.5, sigma=0.0)
    cheap = Keyword(text="popular", popularity=1.0, complexity=0.0)
    costly = Keyword(text="complex stuff", popularity=0.0, complexity=1.0)
    assert model.mean_for(cheap) == pytest.approx(0.05)
    assert model.mean_for(costly) == pytest.approx(0.2)


def test_processing_model_noise_is_centred():
    model = ProcessingModel(base=0.1, sigma=0.3)
    keyword = Keyword(text="k", popularity=0.5, complexity=0.5)
    streams = RandomStreams(7)
    draws = [model.draw(keyword, streams, "s") for _ in range(2000)]
    mean = model.mean_for(keyword)
    # Median of lognormal noise is 1.0 -> median draw near mean_for.
    draws.sort()
    assert draws[1000] == pytest.approx(mean, rel=0.1)
    assert min(draws) >= model.floor


def test_frontend_load_model_variability_ordering():
    streams = RandomStreams(3)
    stable = FrontEndLoadModel(median_delay=0.004, sigma=0.1)
    shared = FrontEndLoadModel(median_delay=0.012, sigma=0.6)
    stable_draws = [stable.draw(streams, "a") for _ in range(1000)]
    shared_draws = [shared.draw(streams, "b") for _ in range(1000)]

    def spread(values):
        values = sorted(values)
        return values[900] - values[100]

    assert sum(shared_draws) / 1000 > sum(stable_draws) / 1000
    assert spread(shared_draws) > spread(stable_draws)


def test_load_model_validation():
    with pytest.raises(ValueError):
        FrontEndLoadModel(median_delay=0)
    with pytest.raises(ValueError):
        ProcessingModel(base=-1)
    with pytest.raises(ValueError):
        ProcessingModel(popularity_discount=1.0)


# ---------------------------------------------------------------------------
# keyword registry
# ---------------------------------------------------------------------------
def test_registry_roundtrip_and_fallback():
    registry = KeywordRegistry()
    keyword = Keyword(text="known", popularity=0.9, complexity=0.1)
    registry.register(keyword)
    assert registry.resolve("known") is keyword
    fallback = registry.resolve("some novel three words")
    assert fallback.popularity == pytest.approx(0.2)
    assert fallback.granularity == 4
    # Deterministic fallback.
    assert registry.resolve("x y") == registry.resolve("x y")


# ---------------------------------------------------------------------------
# full deployment: client -> FE -> BE
# ---------------------------------------------------------------------------
class DeployedWorld:
    """One service deployment plus a single client node."""

    def __init__(self, profile=None, cache_static=True,
                 client_fe_rtt=units.ms(40), seed=0):
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.topology = Topology(self.sim, self.streams)
        profile = profile or google_like_profile()
        self.deployment = ServiceDeployment(
            self.sim, self.topology, self.streams, profile,
            fe_sites=[("edge", GeoPoint(44.9, -93.2))],
            be_sites=[("dc", GeoPoint(35.9, -81.5))],
            cache_static=cache_static)
        client_node = self.topology.add_node("client", GeoPoint(44.9, -93.3))
        self.client = TcpHost(self.sim, client_node, streams=self.streams)
        fe_name = self.deployment.frontends[0].node.name
        self.topology.connect("client", fe_name, delay=client_fe_rtt / 2,
                              bandwidth=units.mbps(100))
        self.topology.build_routes()
        self.fe_endpoint = Endpoint(fe_name, 80)

    def query(self, keyword, query_id="q1"):
        self.deployment.register_keywords([keyword])
        path = build_query_path("/search", {"q": keyword.text,
                                            "id": query_id})
        return HttpFetch(self.client, self.fe_endpoint,
                         HttpRequest(path=path))


def kw(text="test query", popularity=0.5, complexity=0.5):
    return Keyword(text=text, popularity=popularity, complexity=complexity)


def test_query_returns_full_page():
    world = DeployedWorld()
    fetch = world.query(kw("hello world"))
    world.sim.run()
    assert fetch.complete
    expected = world.deployment.pages.full_page(kw("hello world"))
    assert fetch.response.body == expected
    assert fetch.response.headers["X-Service"] == "google-like"


def test_ground_truth_logs_populated():
    world = DeployedWorld()
    fetch = world.query(kw("logged query"), query_id="qq")
    world.sim.run()
    assert fetch.complete
    fe = world.deployment.frontends[0]
    be = world.deployment.backends[0]
    assert "qq" in fe.fetch_log
    assert "qq" in be.query_log
    record = fe.fetch_log["qq"]
    truth = be.query_log["qq"]
    assert record.tfetch is not None
    # Tfetch must exceed Tproc plus one FE-BE round trip.
    rtt_be = world.topology.rtt(fe.node.name, be.node.name)
    assert record.tfetch > truth.tproc + rtt_be * 0.9
    assert record.response_size == len(
        world.deployment.pages.dynamic_content(kw("logged query")))


def test_static_arrives_before_dynamic():
    world = DeployedWorld()
    keyword = kw("timing probe")
    world.deployment.register_keywords([keyword])
    static = world.deployment.pages.static_content()
    arrivals = []
    hooks = RequestHooks(on_body=lambda b: arrivals.append(
        (world.sim.now, len(b))))
    path = build_query_path("/search", {"q": keyword.text, "id": "t"})
    fetch = HttpFetch(world.client, world.fe_endpoint,
                      HttpRequest(path=path), hooks)
    world.sim.run()
    assert fetch.complete
    # Find the time the static prefix finished vs the first dynamic byte.
    cumulative = 0
    static_done = first_dynamic = None
    for time, size in arrivals:
        if cumulative < len(static) <= cumulative + size:
            static_done = time
        if cumulative >= len(static) and first_dynamic is None:
            first_dynamic = time
        cumulative += size
    assert static_done is not None and first_dynamic is not None
    assert first_dynamic >= static_done
    # The gap reflects the FE-BE fetch (tens of ms here).
    assert first_dynamic - static_done > units.ms(5)


def test_cache_disabled_everything_waits_for_backend():
    cached = DeployedWorld(cache_static=True, seed=1)
    uncached = DeployedWorld(cache_static=False, seed=1)
    first_byte_times = {}
    for name, world in (("cached", cached), ("uncached", uncached)):
        keyword = kw("ablation")
        world.deployment.register_keywords([keyword])
        times = []
        hooks = RequestHooks(on_body=lambda b: times.append(world.sim.now))
        path = build_query_path("/search", {"q": keyword.text, "id": "a"})
        fetch = HttpFetch(world.client, world.fe_endpoint,
                          HttpRequest(path=path), hooks)
        world.sim.run()
        assert fetch.complete
        expected = world.deployment.pages.full_page(keyword)
        assert fetch.response.body == expected
        first_byte_times[name] = times[0]
    # Without the FE cache the first byte waits for the whole fetch.
    assert first_byte_times["uncached"] > \
        first_byte_times["cached"] + units.ms(20)


def test_bing_profile_slower_than_google_profile():
    durations = {}
    for name, profile in (("google", google_like_profile()),
                          ("bing", bing_akamai_profile())):
        world = DeployedWorld(profile=profile, seed=2)
        fetch = world.query(kw("same query for both"))
        world.sim.run()
        assert fetch.complete
        # Overall response time from fetch creation (t=0) to completion.
        durations[name] = world.sim.now
    assert durations["bing"] > durations["google"] + 0.1


def test_deployment_lookups():
    sim = Simulator()
    streams = RandomStreams(0)
    topology = Topology(sim, streams)
    deployment = ServiceDeployment(
        sim, topology, streams, google_like_profile(),
        fe_sites=[("west", GeoPoint(37.4, -122.1)),
                  ("east", GeoPoint(40.7, -74.0))],
        be_sites=[("dc-west", GeoPoint(45.6, -121.2)),
                  ("dc-east", GeoPoint(35.9, -81.5))])
    client_location = GeoPoint(34.05, -118.24)  # Los Angeles
    fe = deployment.nearest_frontend(client_location)
    assert "west" in fe.node.name
    be = deployment.backend_for_frontend(fe)
    assert "dc-west" in be.node.name
    assert deployment.fe_be_distance_miles(fe) > 100
    assert deployment.frontend_by_name("east").node.name.endswith("east")
    with pytest.raises(KeyError):
        deployment.frontend_by_name("nope")


def test_deployment_requires_sites():
    sim = Simulator()
    streams = RandomStreams(0)
    topology = Topology(sim, streams)
    with pytest.raises(ValueError):
        ServiceDeployment(sim, topology, streams, google_like_profile(),
                          fe_sites=[], be_sites=[("x", GeoPoint(0, 0))])
