"""Whole-project analysis tests: cross-module rule packs, the
incremental cache, baseline files, and error-path exit codes.

The ``proj_*`` fixture directories under tests/data/lint/ are small
multi-module projects; as in test_lint_rules, every violating line
carries an ``# expect: RULE`` marker and the analyzer must report
exactly the marked (file, line, rule) set — nothing more, nothing less.
"""

import json
import os

import pytest

from repro.lint import LintConfig, LintRunner
from repro.lint.cli import main
from repro.lint.framework import _REGISTRY, Rule, register
from tests.test_lint_rules import expected_findings

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "data", "lint")

PROJECT_FIXTURES = ("proj_evt", "proj_flow", "proj_shard", "proj_rply",
                    "proj_unit_flow", "proj_unit_conv",
                    "proj_effectflow", "proj_rng_lineage")


def lint_project(dirname):
    runner = LintRunner(LintConfig())
    findings = runner.run_paths([os.path.join(FIXTURES, dirname)])
    return runner, findings


def expected_in_tree(root):
    expected = []
    for dirpath, _dirs, files in os.walk(root):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            for line, rule in expected_findings(path):
                expected.append((path, line, rule))
    return sorted(expected)


# ---------------------------------------------------------------------------
# Cross-module rule packs
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("dirname", PROJECT_FIXTURES)
def test_project_fixture_findings_match_expect_markers(dirname):
    runner, findings = lint_project(dirname)
    assert runner.errors == 0
    assert not any(f.suppressed for f in findings)
    actual = sorted((f.path, f.line, f.rule) for f in findings)
    assert actual == expected_in_tree(os.path.join(FIXTURES, dirname))


def test_cross_file_reentrancy_needs_the_project_pass():
    """The exact case the old same-file EVT001 missed: run() lives in a
    different module than the schedule() call, so per-file passes over
    either module see nothing."""
    root = os.path.join(FIXTURES, "proj_evt")
    for name in ("world.py", "engine_helpers.py"):
        per_file = LintRunner(LintConfig()).run_file(
            os.path.join(root, name))
        assert not any(f.rule == "EVT001" for f in per_file)
    _runner, findings = lint_project("proj_evt")
    evt = [f for f in findings if f.rule == "EVT001"]
    assert len(evt) == 1
    # The message names the callback chain that reaches run().
    assert "world.tick -> engine_helpers.drain" in evt[0].message


def test_flow_findings_name_their_source_and_chain():
    _runner, findings = lint_project("proj_flow")
    schedule = [f for f in findings if f.rule == "DET006"]
    assert schedule
    for finding in schedule:
        assert "time.time" in finding.message
    jittered = [f for f in findings
                if f.rule == "DET006" and "via" in f.message]
    assert jittered, "cross-module flow should print its call chain"


def test_shard_chain_names_the_dispatch_entry():
    _runner, findings = lint_project("proj_shard")
    shared = [f for f in findings if f.rule == "SHARD001"]
    assert len(shared) == 2
    for finding in shared:
        assert "_worker" in finding.message


def test_replay_rules_stand_down_without_an_allowlist():
    # Linting only the session-path modules (no replay/ allowlist in
    # the file set) must not produce RPLY findings: partial lints of
    # tcp/ alone would otherwise always light up.
    root = os.path.join(FIXTURES, "proj_rply")
    runner = LintRunner(LintConfig())
    findings = runner.run_paths([os.path.join(root, "tcp"),
                                 os.path.join(root, "measure")])
    assert not any(f.rule.startswith("RPLY") for f in findings)


# ---------------------------------------------------------------------------
# Incremental cache
# ---------------------------------------------------------------------------
def test_cache_second_run_is_identical_and_cheaper(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("import time\nstart = time.time()\n",
                      encoding="utf-8")
    cache = str(tmp_path / "cache.json")
    argv = [str(target), "--no-config", "--cache", cache,
            "--format", "json"]
    assert main(argv) == 1
    first = json.loads(capsys.readouterr().out)
    assert first["files_analyzed"] == 1
    assert first["files_from_cache"] == 0
    assert main(argv) == 1
    second = json.loads(capsys.readouterr().out)
    assert second["files_from_cache"] == 1
    assert second["files_analyzed"] == 0
    assert second["findings"] == first["findings"]


def test_cache_invalidates_on_content_change(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("import time\nstart = time.time()\n",
                      encoding="utf-8")
    cache = str(tmp_path / "cache.json")
    argv = [str(target), "--no-config", "--cache", cache,
            "--format", "json"]
    assert main(argv) == 1
    capsys.readouterr()
    target.write_text("import time\n\nstart = time.time()\n",
                      encoding="utf-8")
    assert main(argv) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["files_from_cache"] == 0
    assert report["files_analyzed"] == 1
    assert [f["line"] for f in report["findings"]] == [3]


def test_cache_restores_facts_for_project_rules(tmp_path):
    # A warm cache must feed module *facts* (not just findings) back to
    # the project pass: EVT001 has to survive a fully-cached run.
    cache = str(tmp_path / "cache.json")
    root = os.path.join(FIXTURES, "proj_evt")
    cold = LintRunner(LintConfig(cache=cache))
    cold_findings = cold.run_paths([root])
    warm = LintRunner(LintConfig(cache=cache))
    warm_findings = warm.run_paths([root])
    assert warm.files_from_cache == warm.files_scanned == 2
    assert [f.as_dict() for f in warm_findings] \
        == [f.as_dict() for f in cold_findings]
    assert any(f.rule == "EVT001" for f in warm_findings)


def test_cache_restores_inferred_signatures(tmp_path, capsys):
    # Beyond module facts, a warm cache must seed the unit-inference
    # fixpoint with the previous run's signature table — and the seeded
    # run has to land on byte-identical findings.
    cache = str(tmp_path / "cache.json")
    root = os.path.join(FIXTURES, "proj_unit_flow")
    argv = [root, "--no-config", "--cache", cache, "--format", "json"]
    assert main(argv) == 1
    cold = json.loads(capsys.readouterr().out)
    assert cold["signatures_from_cache"] == 0
    assert main(argv) == 1
    warm = json.loads(capsys.readouterr().out)
    assert warm["files_from_cache"] == warm["files_scanned"]
    assert warm["files_analyzed"] == 0
    assert warm["signatures_from_cache"] > 0
    assert warm["findings"] == cold["findings"]


def test_cache_survives_pack_disable(tmp_path, capsys):
    # Rule-selection edits are pack-granular, not store-nuking:
    # disabling a rule between runs must keep every cached entry (the
    # facts and findings of the *other* rules are still valid) and
    # simply filter the disabled rule's findings out on restore.
    target = tmp_path / "mod.py"
    target.write_text("import time\nstart = time.time()\n",
                      encoding="utf-8")
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.simlint]\n", encoding="utf-8")
    cache = str(tmp_path / "cache.json")
    argv = [str(target), "--config", str(pyproject), "--cache", cache,
            "--format", "json"]
    assert main(argv) == 1
    cold = json.loads(capsys.readouterr().out)
    flagged = {f["rule"] for f in cold["findings"]}
    assert "DET001" in flagged
    pyproject.write_text('[tool.simlint]\ndisable = ["DET001"]\n',
                         encoding="utf-8")
    assert main(argv) in (0, 1)
    report = json.loads(capsys.readouterr().out)
    assert report["files_from_cache"] == 1
    assert report["files_analyzed"] == 0
    assert "DET001" not in {f["rule"] for f in report["findings"]}


def test_cache_misses_when_selection_grows(tmp_path, capsys):
    # The flip side of pack-granular invalidation: an entry recorded
    # under a narrow selection never ran the re-enabled rule, so the
    # file must be re-analyzed, not replayed without its findings.
    target = tmp_path / "mod.py"
    target.write_text("import time\nstart = time.time()\n",
                      encoding="utf-8")
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text('[tool.simlint]\ndisable = ["DET001"]\n',
                         encoding="utf-8")
    cache = str(tmp_path / "cache.json")
    argv = [str(target), "--config", str(pyproject), "--cache", cache,
            "--format", "json"]
    main(argv)
    capsys.readouterr()
    pyproject.write_text("[tool.simlint]\n", encoding="utf-8")
    assert main(argv) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["files_from_cache"] == 0
    assert report["files_analyzed"] == 1
    assert "DET001" in {f["rule"] for f in report["findings"]}


def test_signature_table_survives_pack_disable(tmp_path, capsys):
    # The satellite regression this protects: the old full-config
    # fingerprint nuked the store (signature table included) on any
    # enable/disable edit.  Toggling a pack must keep the warm run's
    # signatures_from_cache nonzero.
    cache = str(tmp_path / "cache.json")
    root = os.path.join(FIXTURES, "proj_unit_flow")
    argv = [root, "--cache", cache, "--format", "json"]
    assert main(argv + ["--no-config"]) == 1
    capsys.readouterr()
    assert main(argv + ["--no-config", "--disable", "EVT001"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["files_from_cache"] == report["files_scanned"]
    assert report["signatures_from_cache"] > 0


# ---------------------------------------------------------------------------
# Baseline files
# ---------------------------------------------------------------------------
def test_baseline_round_trip(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("import time\nstart = time.time()\n",
                      encoding="utf-8")
    baseline = str(tmp_path / "baseline.json")
    assert main([str(target), "--no-config",
                 "--write-baseline", baseline]) == 0
    capsys.readouterr()
    assert main([str(target), "--no-config", "--baseline", baseline,
                 "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["baselined"] == 1
    assert all(f["baselined"] for f in report["findings"])


def test_baseline_does_not_absorb_new_findings(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("import time\nstart = time.time()\n",
                      encoding="utf-8")
    baseline = str(tmp_path / "baseline.json")
    assert main([str(target), "--no-config",
                 "--write-baseline", baseline]) == 0
    # The old finding moves down a line (fingerprints are line-free, so
    # it stays baselined) and a genuinely new one appears.
    target.write_text("import time\nimport os\nstart = time.time()\n"
                      "noise = os.urandom(8)\n", encoding="utf-8")
    capsys.readouterr()
    assert main([str(target), "--no-config", "--baseline", baseline,
                 "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    blocking = [f for f in report["findings"] if not f["baselined"]]
    assert [f["rule"] for f in blocking] == ["DET002"]


def test_unreadable_baseline_is_a_config_error(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    assert main([str(target), "--no-config",
                 "--baseline", str(tmp_path / "missing.json")]) == 2
    assert "baseline" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Error paths and exit codes
# ---------------------------------------------------------------------------
def test_syntax_error_forces_exit_2(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n", encoding="utf-8")
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    assert main([str(tmp_path), "--no-config", "--format", "json"]) == 2
    report = json.loads(capsys.readouterr().out)
    assert report["errors"] == 1
    assert report["files_scanned"] == 2
    assert [f["rule"] for f in report["findings"]] == ["META001"]


def test_crashing_rule_reports_meta_finding_not_traceback():
    @register
    class ExplodingRule(Rule):
        id = "TST901"
        name = "exploding"
        severity = "warning"
        description = "test-only rule that always crashes"

        def visit_Name(self, node):
            raise RuntimeError("boom")

    try:
        runner = LintRunner(LintConfig())
        findings = runner.run_source("x = 1\n", path="inline.py")
        assert runner.errors == 1
        assert any(f.rule == "META001" and "internal error" in f.message
                   for f in findings)
    finally:
        _REGISTRY.pop("TST901")
