"""Tests for the residential/mobile access-profile extension."""

import pytest

from repro.sim import units
from repro.testbed.residential import (
    CAMPUS,
    MOBILE_3G,
    RESIDENTIAL_DSL,
    AccessProfile,
    mobile_vantage_points,
    residential_vantage_points,
    scenario_with_access_profile,
    vantage_points_with_profile,
)
from repro.testbed.scenario import Scenario


def test_profiles_are_ordered_by_access_delay():
    for low, high in ((CAMPUS, RESIDENTIAL_DSL),
                      (RESIDENTIAL_DSL, MOBILE_3G)):
        assert low.access_delay_range_ms[1] <= \
            high.access_delay_range_ms[1]
        assert low.loss_rate <= high.loss_rate
        assert low.bandwidth >= high.bandwidth


def test_residential_points_have_dsl_delays():
    vps = residential_vantage_points(50, seed=2)
    assert len(vps) == 50
    for vp in vps:
        assert units.ms(15) <= vp.access_delay <= units.ms(40)
        assert vp.name.startswith("residential-dsl")


def test_mobile_points_have_3g_delays():
    vps = mobile_vantage_points(30, seed=2)
    for vp in vps:
        assert units.ms(40) <= vp.access_delay <= units.ms(120)


def test_generation_deterministic():
    a = vantage_points_with_profile(20, RESIDENTIAL_DSL, seed=5)
    b = vantage_points_with_profile(20, RESIDENTIAL_DSL, seed=5)
    assert [vp.access_delay for vp in a] == [vp.access_delay for vp in b]


def test_scenario_with_profile_swaps_fleet():
    scenario = scenario_with_access_profile(RESIDENTIAL_DSL, seed=3,
                                            vantage_count=10)
    assert len(scenario.vantage_points) == 10
    assert all(vp.name.startswith("residential-dsl")
               for vp in scenario.vantage_points)
    assert scenario.config.client_loss_rate == RESIDENTIAL_DSL.loss_rate
    assert scenario.config.client_bandwidth == RESIDENTIAL_DSL.bandwidth
    # The fleet must be usable: resolve + link a default FE.
    vp = scenario.vantage_points[0]
    frontend, rtt = scenario.connect_default(Scenario.BING, vp)
    assert rtt >= 2 * vp.access_delay  # DSL floor dominates


def test_dsl_rtt_floor_kills_sub_20ms():
    """Reviewer #5's exact point: no DSL node sees <20 ms anywhere."""
    scenario = scenario_with_access_profile(RESIDENTIAL_DSL, seed=4,
                                            vantage_count=15)
    for vp in scenario.vantage_points:
        frontend = scenario.default_frontend(Scenario.BING, vp)
        service = scenario.service(Scenario.BING)
        rtt = scenario.client_fe_rtt(vp, frontend, service)
        assert rtt > units.ms(20)


def test_custom_profile():
    profile = AccessProfile(name="lab", access_delay_range_ms=(0.5, 1.0),
                            peering_penalty_range_ms=(1.0, 2.0))
    vps = vantage_points_with_profile(5, profile, seed=1)
    assert all(vp.access_delay <= units.ms(1.0) for vp in vps)
