"""Property-based tests for the model, statistics, and HTTP framing."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.analysis import stats
from repro.analysis.boundary import (
    chunk_spans,
    common_prefix_length,
    map_body_offset_to_stream,
)
from repro.core.model import AbstractModel
from repro.http.message import (
    HttpResponse,
    ResponseParser,
    _url_quote,
    _url_unquote,
    encode_chunk,
    encode_last_chunk,
)
from repro.net.geo import GeoPoint, haversine_miles

finite = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


# ---------------------------------------------------------------------------
# AbstractModel invariants
# ---------------------------------------------------------------------------
@given(fe_delay=st.floats(0, 0.1), tfetch=st.floats(0, 2.0),
       windows=st.integers(0, 5), rtt=st.floats(0, 0.5))
def test_model_bounds_always_consistent(fe_delay, tfetch, windows, rtt):
    model = AbstractModel(fe_delay=fe_delay, tfetch=tfetch,
                          static_windows=windows)
    tdelta = model.predict_tdelta(rtt)
    tdynamic = model.predict_tdynamic(rtt)
    tstatic = model.predict_tstatic(rtt)
    assert tdelta >= 0
    assert tdynamic >= tfetch - 1e-12          # never beats the fetch
    assert tdynamic >= tstatic - 1e-12         # dynamic ends last
    assert abs(tdynamic - tstatic - tdelta) < 1e-9 or tdelta == 0


@given(fe_delay=st.floats(0, 0.05), tfetch=st.floats(0.001, 1.0),
       windows=st.integers(1, 4))
def test_model_threshold_is_the_extinction_point(fe_delay, tfetch,
                                                 windows):
    model = AbstractModel(fe_delay=fe_delay, tfetch=tfetch,
                          static_windows=windows)
    threshold = model.rtt_threshold()
    assert model.predict_tdelta(threshold * 1.01 + 1e-6) == 0
    if threshold > 1e-9:
        assert model.predict_tdelta(threshold * 0.99) > 0


@given(fe_delay=st.floats(0, 0.05), tfetch=st.floats(0, 1.0),
       windows=st.integers(0, 4),
       rtt1=st.floats(0, 0.5), rtt2=st.floats(0, 0.5))
def test_model_monotonicity(fe_delay, tfetch, windows, rtt1, rtt2):
    assume(rtt1 <= rtt2)
    model = AbstractModel(fe_delay=fe_delay, tfetch=tfetch,
                          static_windows=windows)
    assert model.predict_tdelta(rtt1) >= model.predict_tdelta(rtt2)
    assert model.predict_tdynamic(rtt1) <= model.predict_tdynamic(rtt2)


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------
@given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
       window=st.integers(1, 20))
def test_moving_median_stays_within_range(values, window):
    smoothed = stats.moving_median(values, window)
    assert len(smoothed) == len(values)
    lo, hi = min(values), max(values)
    assert all(lo <= s <= hi for s in smoothed)


@given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
def test_cdf_is_monotone_and_normalised(values):
    points = stats.cdf_points(values)
    fractions = [f for _, f in points]
    assert fractions == sorted(fractions)
    assert math.isclose(fractions[-1], 1.0)
    xs = [x for x, _ in points]
    assert xs == sorted(xs)


@given(values=st.lists(st.floats(-1e5, 1e5), min_size=2, max_size=200))
def test_box_stats_ordering(values):
    box = stats.box_stats(values)
    assert box.low_whisker <= box.q1 <= box.median <= box.q3 \
        <= box.high_whisker
    assert min(values) <= box.low_whisker
    assert box.high_whisker <= max(values)


@given(slope=st.floats(-100, 100), intercept=st.floats(-100, 100),
       xs=st.lists(st.floats(-100, 100), min_size=3, max_size=50,
                   unique=True))
def test_linear_fit_exact_recovery(slope, intercept, xs):
    assume(max(xs) - min(xs) > 1e-3)  # physically meaningful spread
    ys = [slope * x + intercept for x in xs]
    fit = stats.linear_fit(xs, ys)
    assert math.isclose(fit.slope, slope, abs_tol=1e-5, rel_tol=1e-5)
    assert math.isclose(fit.intercept, intercept, abs_tol=1e-4,
                        rel_tol=1e-4)


# ---------------------------------------------------------------------------
# geography
# ---------------------------------------------------------------------------
@given(lat1=st.floats(-90, 90), lon1=st.floats(-180, 180),
       lat2=st.floats(-90, 90), lon2=st.floats(-180, 180))
def test_haversine_symmetric_and_bounded(lat1, lon1, lat2, lon2):
    d12 = haversine_miles(lat1, lon1, lat2, lon2)
    d21 = haversine_miles(lat2, lon2, lat1, lon1)
    assert math.isclose(d12, d21, abs_tol=1e-6)
    assert 0 <= d12 <= 12_500.1  # half the Earth's circumference


@given(lat=st.floats(-90, 90), lon=st.floats(-180, 180))
def test_haversine_identity(lat, lon):
    assert haversine_miles(lat, lon, lat, lon) == 0.0


# ---------------------------------------------------------------------------
# URL encoding
# ---------------------------------------------------------------------------
@given(text=st.text(max_size=100))
def test_url_quote_roundtrip(text):
    assert _url_unquote(_url_quote(text)) == text


# ---------------------------------------------------------------------------
# chunked framing
# ---------------------------------------------------------------------------
chunks_strategy = st.lists(st.binary(min_size=1, max_size=500),
                           min_size=1, max_size=8)


def build_chunked_stream(chunks):
    head = HttpResponse(headers={"Transfer-Encoding": "chunked"}
                        ).encode_head()
    body = b"".join(encode_chunk(c) for c in chunks) + encode_last_chunk()
    return head + body


@given(chunks=chunks_strategy)
def test_chunk_spans_reconstruct_payload(chunks):
    stream = build_chunked_stream(chunks)
    spans = chunk_spans(stream)
    assert len(spans) == len(chunks)
    rebuilt = b"".join(stream[s.payload_start:s.payload_end]
                       for s in spans)
    assert rebuilt == b"".join(chunks)


@given(chunks=chunks_strategy, data=st.data())
def test_map_body_offset_agrees_with_parser(chunks, data):
    stream = build_chunked_stream(chunks)
    body = b"".join(chunks)
    offset = data.draw(st.integers(0, len(body) - 1))
    stream_offset = map_body_offset_to_stream(stream, offset)
    assert stream[stream_offset] == body[offset]


@given(chunks=chunks_strategy)
def test_parser_and_spans_agree_on_body(chunks):
    stream = build_chunked_stream(chunks)
    parser = ResponseParser()
    events = parser.feed(stream)
    assert events[-1][0] == "end"
    assert events[-1][1].body == b"".join(chunks)


# ---------------------------------------------------------------------------
# common prefix
# ---------------------------------------------------------------------------
@given(prefix=st.binary(max_size=200), tails=st.lists(
    st.binary(min_size=1, max_size=50), min_size=2, max_size=5))
def test_common_prefix_at_least_shared_prefix(prefix, tails):
    streams = [prefix + tail for tail in tails]
    length = common_prefix_length(streams)
    assert length >= len(prefix)
    # All streams agree on the first `length` bytes by definition.
    head = streams[0][:length]
    assert all(s[:length] == head for s in streams)


# ---------------------------------------------------------------------------
# content generator
# ---------------------------------------------------------------------------
_keyword_text = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                           max_codepoint=0x7F),
    min_size=1, max_size=30)


@settings(max_examples=30, deadline=None)
@given(texts=st.lists(_keyword_text, min_size=2, max_size=5,
                      unique=True))
def test_pages_share_exactly_the_static_prefix(texts):
    """Every page starts with the byte-identical static portion, and the
    dynamic portions are deterministic per keyword."""
    from repro.content.keywords import Keyword
    from repro.content.page import PageGenerator, PageProfile

    generator = PageGenerator("prop-svc",
                              PageProfile(static_size=2048,
                                          dynamic_base_size=4096,
                                          dynamic_complexity_size=1024))
    static = generator.static_content()
    keywords = [Keyword(text=t, popularity=0.5, complexity=0.5)
                for t in texts]
    pages = [generator.full_page(k) for k in keywords]
    for page, keyword in zip(pages, keywords):
        assert page.startswith(static)
        assert page == generator.full_page(keyword)  # deterministic
    assert common_prefix_length(pages) >= len(static)
