"""Tests for the session-replay cache (``repro.sim.replay``).

The load-bearing property mirrors the sharding layer's: the cache must
be *invisible* in the results.  Every observable — session landmarks,
packet traces, ground-truth fetch/query logs, RNG draw accounting —
must be bit-identical with the cache on, off, and on-inside-shards.
Everything else here (admission bypasses, LRU mechanics, counters)
supports that.
"""

import pytest

from repro.content.keywords import Keyword
from repro.measure.driver import run_dataset_a, run_dataset_b
from repro.parallel import run_dataset_a_sharded, run_dataset_b_sharded
from repro.sim.engine import SchedulingError, Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.replay import ReplayCache, ReplayStats, replay_cache_enabled
from repro.sim.replay.fingerprint import (
    binade,
    predicted_service_draws,
    window_fits,
)
from repro.testbed.scenario import Scenario, ScenarioConfig

#: Deterministic keyed services: the only mode where timelines repeat,
#: hence where the cache gets hits.  Three VPs, one service, staggered
#: submissions 1 s apart with a 3 s round interval.
DET_CONFIG = ScenarioConfig(seed=7, vantage_count=3,
                            keyed_service_draws=True,
                            deterministic_services=True)

KEYWORD = Keyword(text="alpha query", popularity=0.6, complexity=0.3)


def session_fingerprint(session):
    """Every observable of one session, for exact comparison."""
    return (
        session.query_id, session.service, session.vp_name,
        session.fe_name, session.local_port, session.started_at,
        session.completed_at, session.failed, session.response_size,
        session.path_rtt,
        tuple((e.time, e.direction, e.src, e.dst, e.sport, e.dport,
               e.wire_size, e.payload_len, e.seq, e.ack, e.syn, e.fin,
               e.ack_flag, e.retransmit)
              for e in session.events),
    )


def ground_truth(scenario, service_name):
    """Normalized FE fetch-log and BE query-log contents."""
    deployment = scenario.service(service_name)
    fetches = {key: (rec.query_id, rec.forwarded_at, rec.completed_at,
                     rec.response_size)
               for key, rec in deployment.merged_fetch_log().items()}
    queries = {key: (rec.query_id, rec.keyword_text, rec.arrival_time,
                     rec.tproc, rec.response_size, rec.completed_time)
               for key, rec in deployment.merged_query_log().items()}
    return fetches, queries


def run_a(replay_cache, config=DET_CONFIG, repeats=30, interval=3.0):
    scenario = Scenario(config)
    dataset = run_dataset_a(scenario, [KEYWORD], repeats=repeats,
                            interval=interval,
                            services=[Scenario.GOOGLE],
                            replay_cache=replay_cache)
    return scenario, dataset


def run_b(replay_cache, repeats=20, interval=8.0):
    scenario = Scenario(ScenarioConfig(seed=11, vantage_count=3,
                                       keyed_service_draws=True,
                                       deterministic_services=True))
    frontend = scenario.service(Scenario.GOOGLE).frontends[0]
    dataset = run_dataset_b(scenario, Scenario.GOOGLE, frontend, KEYWORD,
                            repeats=repeats, interval=interval,
                            replay_cache=replay_cache)
    return scenario, dataset


# ---------------------------------------------------------------------------
# equivalence: the cache must not change a single byte
# ---------------------------------------------------------------------------
def test_dataset_a_cache_on_equals_cache_off():
    scenario_off, off = run_a(False)
    scenario_on, on = run_a(True)

    assert on.replay is not None and on.replay.hits > 0
    assert len(off.sessions) == len(on.sessions) > 0
    assert ([session_fingerprint(s) for s in off.sessions]
            == [session_fingerprint(s) for s in on.sessions])
    assert (ground_truth(scenario_off, Scenario.GOOGLE)
            == ground_truth(scenario_on, Scenario.GOOGLE))


def test_dataset_b_cache_on_equals_cache_off():
    scenario_off, off = run_b(False)
    scenario_on, on = run_b(True)

    assert on.replay is not None and on.replay.hits > 0
    assert ([session_fingerprint(s) for s in off.sessions]
            == [session_fingerprint(s) for s in on.sessions])
    assert (ground_truth(scenario_off, Scenario.GOOGLE)
            == ground_truth(scenario_on, Scenario.GOOGLE))


def test_dataset_a_sharded_with_cache_equals_serial_without():
    config = ScenarioConfig(seed=7, vantage_count=6,
                            keyed_service_draws=True,
                            deterministic_services=True)
    serial = run_dataset_a(Scenario(config), [KEYWORD], repeats=20,
                           interval=3.0, services=[Scenario.GOOGLE],
                           replay_cache=False)
    sharded = run_dataset_a_sharded(Scenario(config), [KEYWORD],
                                    repeats=20, interval=3.0,
                                    services=[Scenario.GOOGLE],
                                    shards=2, processes=2,
                                    replay_cache=True)

    assert sharded.replay is not None and sharded.replay.hits > 0
    assert ([session_fingerprint(s) for s in serial.sessions]
            == [session_fingerprint(s) for s in sharded.sessions])


def test_dataset_b_sharded_with_cache_equals_serial_without():
    config = ScenarioConfig(seed=11, vantage_count=3,
                            keyed_service_draws=True,
                            deterministic_services=True)
    scenario = Scenario(config)
    fe_name = scenario.service(Scenario.GOOGLE).frontends[0].node.name
    serial_scenario = Scenario(config)
    serial_fe = serial_scenario.service(Scenario.GOOGLE) \
        .frontend_by_name(fe_name)
    serial = run_dataset_b(serial_scenario, Scenario.GOOGLE, serial_fe,
                           KEYWORD, repeats=12, interval=8.0,
                           replay_cache=False)
    sharded = run_dataset_b_sharded(Scenario(config), Scenario.GOOGLE,
                                    fe_name, KEYWORD, repeats=12,
                                    interval=8.0, shards=3, processes=2,
                                    replay_cache=True)

    assert sharded.replay is not None
    assert ([session_fingerprint(s) for s in serial.sessions]
            == [session_fingerprint(s) for s in sharded.sessions])


# ---------------------------------------------------------------------------
# admission bypasses
# ---------------------------------------------------------------------------
def test_cross_traffic_on_frontend_bypasses_but_stays_identical():
    # Interval far below session duration + guard: every submission
    # lands on a still-busy FE, so nothing may be recorded or replayed.
    def run(cache):
        scenario = Scenario(ScenarioConfig(seed=11, vantage_count=3,
                                           keyed_service_draws=True,
                                           deterministic_services=True))
        frontend = scenario.service(Scenario.GOOGLE).frontends[0]
        return run_dataset_b(scenario, Scenario.GOOGLE, frontend,
                             KEYWORD, repeats=10, interval=0.6,
                             replay_cache=cache)

    off = run(False)
    on = run(True)
    assert on.replay.hits == 0
    assert on.replay.bypasses.get("fe-busy", 0) > 0
    assert ([session_fingerprint(s) for s in off.sessions]
            == [session_fingerprint(s) for s in on.sessions])


def test_lossy_path_bypasses_every_submission():
    lossy = ScenarioConfig(seed=7, vantage_count=3,
                           keyed_service_draws=True,
                           deterministic_services=True,
                           client_loss_rate=0.02)
    _, off = run_a(False, config=lossy, repeats=6)
    _, on = run_a(True, config=lossy, repeats=6)

    assert on.replay.hits == 0 and on.replay.misses == 0
    assert on.replay.bypasses == {"lossy-path": len(on.sessions)}
    assert ([session_fingerprint(s) for s in off.sessions]
            == [session_fingerprint(s) for s in on.sessions])


def test_unkeyed_draws_bypass_whole_campaign():
    unkeyed = ScenarioConfig(seed=7, vantage_count=3,
                             deterministic_services=True)
    _, dataset = run_a(True, config=unkeyed, repeats=3)
    assert dataset.replay.hits == 0 and dataset.replay.misses == 0
    assert dataset.replay.bypasses == {
        "unkeyed-draws": len(dataset.sessions)}


def test_default_stochastic_profiles_bypass_statically():
    # Both stock profiles carry FE-BE jitter, so without
    # deterministic_services every triple is turned away before any
    # fingerprinting happens.
    stochastic = ScenarioConfig(seed=7, vantage_count=3,
                                keyed_service_draws=True)
    scenario = Scenario(stochastic)
    dataset = run_dataset_a(scenario, [KEYWORD], repeats=3, interval=3.0,
                            replay_cache=True)
    assert dataset.replay.hits == 0 and dataset.replay.misses == 0
    assert set(dataset.replay.bypasses) <= {"jittery-path", "lossy-path"}
    assert dataset.replay.bypassed == len(dataset.sessions)


# ---------------------------------------------------------------------------
# counters and accounting
# ---------------------------------------------------------------------------
def test_hit_miss_bypass_counters_partition_submissions():
    _, dataset = run_a(True)
    stats = dataset.replay
    assert stats.submissions == len(dataset.sessions)
    assert stats.hits + stats.misses + stats.bypassed \
        == len(dataset.sessions)
    assert stats.hits > 0
    assert stats.recorded <= stats.misses
    assert stats.validations + stats.validation_failures <= stats.misses
    assert stats.validation_failures == 0


def test_replay_stats_sum_merges_counters():
    left = ReplayStats(hits=2, misses=1, recorded=1,
                       bypasses={"fe-busy": 3})
    right = ReplayStats(hits=1, misses=4, validations=2,
                        bypasses={"fe-busy": 1, "window": 2})
    merged = sum([left, right])
    assert merged.hits == 3 and merged.misses == 5
    assert merged.recorded == 1 and merged.validations == 2
    assert merged.bypasses == {"fe-busy": 4, "window": 2}
    assert merged.submissions == left.submissions + right.submissions


def test_replay_cache_capacity_and_eviction():
    cache = ReplayCache(capacity=2)
    cache.put(("a",), "timeline-a")
    cache.put(("b",), "timeline-b")
    assert cache.get(("a",)) == "timeline-a"  # refreshes LRU order
    cache.put(("c",), "timeline-c")           # evicts ("b",), the LRU
    assert cache.evictions == 1
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) == "timeline-a"
    assert cache.get(("c",)) == "timeline-c"
    assert len(cache) == 2
    with pytest.raises(ValueError):
        ReplayCache(capacity=0)


def test_replay_cache_binds_to_one_scenario():
    cache = ReplayCache()
    first = Scenario(ScenarioConfig(seed=1, vantage_count=2))
    other = Scenario(ScenarioConfig(seed=2, vantage_count=2))
    cache.bind(first)
    cache.bind(first)  # re-binding the same scenario is fine
    with pytest.raises(ValueError):
        cache.bind(other)


def test_eviction_pressure_keeps_results_identical():
    # A one-entry cache thrashes (every VP/binade evicts the previous
    # timeline) but must still never change a byte.
    _, off = run_a(False, repeats=12)
    scenario = Scenario(DET_CONFIG)
    dataset = run_dataset_a(scenario, [KEYWORD], repeats=12,
                            interval=3.0, services=[Scenario.GOOGLE],
                            replay_cache=ReplayCache(capacity=1))
    assert dataset.replay.evictions > 0
    assert ([session_fingerprint(s) for s in off.sessions]
            == [session_fingerprint(s) for s in dataset.sessions])


def test_replay_cache_enabled_env_values(monkeypatch):
    for value, expected in [("0", False), ("off", False), ("no", False),
                            ("FALSE", False), ("1", True), ("on", True),
                            ("", True)]:
        monkeypatch.setenv("REPRO_REPLAY_CACHE", value)
        assert replay_cache_enabled() is expected
    monkeypatch.delenv("REPRO_REPLAY_CACHE")
    assert replay_cache_enabled() is True


def test_env_disable_turns_cache_off(monkeypatch):
    monkeypatch.setenv("REPRO_REPLAY_CACHE", "0")
    _, dataset = run_a(None, repeats=3)
    assert dataset.replay is None
    monkeypatch.setenv("REPRO_REPLAY_CACHE", "1")
    _, dataset = run_a(None, repeats=3)
    assert dataset.replay is not None


# ---------------------------------------------------------------------------
# RNG draw accounting
# ---------------------------------------------------------------------------
def test_randomstreams_counts_registry_draws():
    streams = RandomStreams(3)
    assert streams.draws_consumed == 0
    streams.uniform("a", 0.0, 1.0)
    streams.lognormal("b", 0.0, 1.0)
    streams.keyed("c", "key-1")
    assert streams.draws_consumed == 3
    # Degenerate bernoulli probabilities short-circuit without a draw.
    assert streams.bernoulli("d", 0.0) is False
    assert streams.bernoulli("d", 1.0) is True
    assert streams.draws_consumed == 3
    streams.bernoulli("d", 0.5)
    assert streams.draws_consumed == 4
    # get() hands out a generator without drawing from it.
    streams.get("e")
    assert streams.draws_consumed == 4


def test_prediction_uses_shadow_streams_not_campaign_registry():
    scenario = Scenario(DET_CONFIG)
    frontend = scenario.service(Scenario.GOOGLE).frontends[0]
    before = scenario.streams.draws_consumed
    predicted_service_draws(scenario, Scenario.GOOGLE, frontend,
                            KEYWORD, "q-test-000001")
    assert scenario.streams.draws_consumed == before


def test_cache_hits_consume_same_draws_as_misses():
    # Hits only occur with deterministic services, where the keyed
    # models draw nothing -- so equality here proves a hit burns
    # exactly what its simulated counterpart would have.
    scenario_off, off = run_a(False)
    scenario_on, on = run_a(True)
    assert on.replay.hits > 0
    assert (scenario_on.streams.draws_consumed
            == scenario_off.streams.draws_consumed)

    # With stochastic keyed draws the predicted values enter the cache
    # key, so no key ever repeats: every session simulates and draws.
    stochastic = ScenarioConfig(seed=7, vantage_count=3,
                                keyed_service_draws=True,
                                client_loss_rate=0.0)
    scenario_soff = Scenario(stochastic)
    run_dataset_a(scenario_soff, [KEYWORD], repeats=3, interval=3.0,
                  replay_cache=False)
    scenario_son = Scenario(stochastic)
    run_dataset_a(scenario_son, [KEYWORD], repeats=3, interval=3.0,
                  replay_cache=True)
    assert scenario_soff.streams.draws_consumed > 0
    assert (scenario_son.streams.draws_consumed
            == scenario_soff.streams.draws_consumed)


# ---------------------------------------------------------------------------
# engine: bulk timeline injection
# ---------------------------------------------------------------------------
def test_schedule_timeline_fires_at_shifted_times():
    sim = Simulator()
    seen = []
    sim.schedule_timeline(10.0, [
        (0.5, seen.append, (("late", ))),
        (0.0, seen.append, (("early", ))),
        (0.25, seen.append, (("mid", ))),
    ])
    sim.run()
    assert seen == ["early", "mid", "late"]
    assert sim.now == 10.5


def test_schedule_timeline_rejects_past_events():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    assert handle is not None
    sim.run()
    assert sim.now == 1.0
    with pytest.raises(SchedulingError):
        sim.schedule_timeline(0.0, [(0.5, lambda: None, ())])


def test_schedule_timeline_handles_are_cancellable():
    sim = Simulator()
    seen = []
    handles = sim.schedule_timeline(1.0, [
        (0.0, seen.append, (("kept", ))),
        (0.1, seen.append, (("cancelled", ))),
    ])
    sim.cancel(handles[1])
    sim.run()
    assert seen == ["kept"]


# ---------------------------------------------------------------------------
# fingerprint primitives
# ---------------------------------------------------------------------------
def test_binade_and_window_fit():
    assert binade(64.0) == 7
    assert binade(127.999) == 7
    assert binade(128.0) == 8
    assert window_fits(64.0, 127.9)
    assert not window_fits(64.0, 128.0)   # crosses a binade boundary
    assert not window_fits(0.0, 1.0)      # zero has no positive binade
