"""Tests for timelines, RNG streams, and unit helpers."""

import pytest

from repro.sim import units
from repro.sim.randomness import RandomStreams, derive_seed
from repro.sim.timeline import Timeline


# ---------------------------------------------------------------------------
# Timeline
# ---------------------------------------------------------------------------
def test_timeline_append_and_query():
    tl = Timeline("t")
    tl.add(1.0, "a", {"v": 1})
    tl.add(2.0, "b")
    tl.add(2.0, "a", {"v": 2})
    assert len(tl) == 3
    assert [r.kind for r in tl] == ["a", "b", "a"]
    assert tl.first("a").payload == {"v": 1}
    assert tl.last("a").payload == {"v": 2}
    assert tl.first("zzz") is None


def test_timeline_rejects_time_regression():
    tl = Timeline()
    tl.add(5.0, "x")
    with pytest.raises(ValueError):
        tl.add(4.0, "y")


def test_timeline_between_uses_half_open_interval():
    tl = Timeline()
    for t in (1.0, 2.0, 3.0, 4.0):
        tl.add(t, "k")
    assert [r.time for r in tl.between(2.0, 4.0)] == [2.0, 3.0]


def test_timeline_span_and_clear():
    tl = Timeline()
    assert tl.span() == 0.0
    tl.add(1.0, "a")
    assert tl.span() == 0.0
    tl.add(4.5, "b")
    assert tl.span() == 3.5
    tl.clear()
    assert len(tl) == 0


def test_timeline_records_filter_predicate():
    tl = Timeline()
    tl.add(1.0, "pkt", {"size": 100})
    tl.add(2.0, "pkt", {"size": 1500})
    big = tl.records("pkt", predicate=lambda r: r.payload["size"] > 500)
    assert len(big) == 1 and big[0].time == 2.0


# ---------------------------------------------------------------------------
# RandomStreams
# ---------------------------------------------------------------------------
def test_named_streams_are_stable_and_independent():
    a = RandomStreams(seed=42)
    b = RandomStreams(seed=42)
    # Same name, same seed -> identical sequences.
    assert [a.get("x").random() for _ in range(5)] == \
           [b.get("x").random() for _ in range(5)]
    # Different names -> different sequences.
    assert a.get("y").random() != b.get("x").random()


def test_stream_isolation_from_new_consumers():
    """Adding a consumer must not perturb existing streams."""
    a = RandomStreams(seed=7)
    first = a.get("loss").random()
    b = RandomStreams(seed=7)
    b.get("brand-new-stream").random()  # extra consumer
    assert b.get("loss").random() == first


def test_derive_seed_is_deterministic_and_spread():
    s1 = derive_seed(1, "a")
    assert s1 == derive_seed(1, "a")
    assert s1 != derive_seed(1, "b")
    assert s1 != derive_seed(2, "a")


def test_spawn_creates_distinct_universe():
    root = RandomStreams(seed=3)
    child1 = root.spawn("rep1")
    child2 = root.spawn("rep2")
    assert child1.get("x").random() != child2.get("x").random()


def test_bernoulli_edges():
    streams = RandomStreams(0)
    assert streams.bernoulli("p", 0.0) is False
    assert streams.bernoulli("p", 1.0) is True
    assert all(streams.bernoulli("q", 1.0 - 1e-12) for _ in range(20))
    with pytest.raises(ValueError):
        streams.bernoulli("r", 1.5)


def test_bernoulli_certain_events_consume_no_draw():
    """p=0.0 and p=1.0 must be symmetric: neither consumes a draw, so a
    certain event never perturbs the stream it shares a name with."""
    baseline = RandomStreams(11)
    reference = baseline.get("loss").random()

    perturbed = RandomStreams(11)
    assert perturbed.bernoulli("loss", 1.0) is True
    assert perturbed.bernoulli("loss", 0.0) is False
    assert perturbed.get("loss").random() == reference


# ---------------------------------------------------------------------------
# units
# ---------------------------------------------------------------------------
def test_unit_conversions_roundtrip():
    assert units.ms(250) == 0.25
    assert units.seconds_to_ms(0.25) == 250
    assert units.us(1000) == units.ms(1)
    assert units.mbps(8) == 1_000_000  # 8 Mbit/s = 1 MB/s


def test_propagation_delay_scales_linearly():
    d1 = units.propagation_delay(100)
    d2 = units.propagation_delay(200)
    assert d2 == pytest.approx(2 * d1)
    # ~100 miles of inflated fiber is on the order of 1 ms one-way.
    assert 0.0005 < d1 < 0.01


def test_propagation_delay_rejects_negative():
    with pytest.raises(ValueError):
        units.propagation_delay(-1)


def test_transmission_delay():
    assert units.transmission_delay(1_000_000, units.mbps(8)) == \
        pytest.approx(1.0)
    with pytest.raises(ValueError):
        units.transmission_delay(10, 0)
    with pytest.raises(ValueError):
        units.transmission_delay(-1, 100)
