"""Tests for network primitives: addresses, packets, geo, links, routing."""

import pytest

from repro.net.address import Endpoint, EphemeralPortAllocator, FlowKey
from repro.net.geo import GeoPoint, haversine_miles, nearest
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.routing import build_routing_tables, dijkstra
from repro.net.topology import Topology
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


# ---------------------------------------------------------------------------
# addresses
# ---------------------------------------------------------------------------
def test_endpoint_validation_and_str():
    endpoint = Endpoint("host-a", 80)
    assert str(endpoint) == "host-a:80"
    with pytest.raises(ValueError):
        Endpoint("", 80)
    with pytest.raises(ValueError):
        Endpoint("h", 0)
    with pytest.raises(ValueError):
        Endpoint("h", 70000)


def test_flow_key_reversal():
    flow = FlowKey(Endpoint("a", 1234), Endpoint("b", 80))
    assert flow.reversed() == FlowKey(Endpoint("b", 80), Endpoint("a", 1234))
    assert flow.reversed().reversed() == flow


def test_ephemeral_ports_unique_until_released():
    alloc = EphemeralPortAllocator()
    p1 = alloc.allocate()
    p2 = alloc.allocate()
    assert p1 != p2
    assert p1 >= EphemeralPortAllocator.FIRST
    alloc.release(p1)
    # After a full wrap, p1 becomes available again.
    seen = {alloc.allocate() for _ in range(100)}
    assert len(seen) == 100


# ---------------------------------------------------------------------------
# packets
# ---------------------------------------------------------------------------
def test_packet_uids_unique_and_hops_tracked():
    pkt1 = Packet("a", "b", "tcp", 100)
    pkt2 = Packet("a", "b", "tcp", 100)
    assert pkt1.uid != pkt2.uid
    pkt1.record_hop("a")
    pkt1.record_hop("r1")
    assert pkt1.hops == ["a", "r1"]


def test_packet_hop_budget_enforced():
    pkt = Packet("a", "b", "tcp", 10)
    for i in range(Packet.MAX_HOPS):
        pkt.record_hop("n%d" % i)
    with pytest.raises(RuntimeError):
        pkt.record_hop("one-too-many")


def test_packet_negative_size_rejected():
    with pytest.raises(ValueError):
        Packet("a", "b", "tcp", -1)


# ---------------------------------------------------------------------------
# geo
# ---------------------------------------------------------------------------
def test_haversine_known_distance():
    # Minneapolis to Chicago is about 355 miles great-circle.
    msp = GeoPoint(44.98, -93.27)
    chi = GeoPoint(41.88, -87.63)
    distance = msp.distance_miles(chi)
    assert 330 < distance < 380


def test_haversine_zero_and_symmetry():
    a = GeoPoint(10.0, 20.0)
    b = GeoPoint(-33.0, 151.0)
    assert a.distance_miles(a) == 0.0
    assert a.distance_miles(b) == pytest.approx(b.distance_miles(a))


def test_geo_validation():
    with pytest.raises(ValueError):
        GeoPoint(91, 0)
    with pytest.raises(ValueError):
        GeoPoint(0, 200)


def test_nearest_picks_minimum():
    class Site:
        def __init__(self, lat, lon):
            self.location = GeoPoint(lat, lon)

    target = GeoPoint(0, 0)
    sites = [Site(50, 50), Site(1, 1), Site(-30, 10)]
    best, distance = nearest(target, sites)
    assert best is sites[1]
    assert distance == pytest.approx(haversine_miles(0, 0, 1, 1))
    with pytest.raises(ValueError):
        nearest(target, [])


# ---------------------------------------------------------------------------
# links
# ---------------------------------------------------------------------------
def test_link_delivery_includes_tx_and_prop_delay():
    sim = Simulator()
    arrivals = []
    link = Link(sim, "l", delay=0.010, bandwidth=1000.0,  # 1000 B/s
                deliver=lambda p: arrivals.append(sim.now))
    link.send(Packet("a", "b", "tcp", 500))
    sim.run()
    # 500 B at 1000 B/s = 0.5 s tx + 0.01 s prop.
    assert arrivals == [pytest.approx(0.51)]


def test_link_serializes_back_to_back_packets():
    sim = Simulator()
    arrivals = []
    link = Link(sim, "l", delay=0.0, bandwidth=1000.0,
                deliver=lambda p: arrivals.append(sim.now))
    link.send(Packet("a", "b", "tcp", 1000))
    link.send(Packet("a", "b", "tcp", 1000))
    sim.run()
    assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]


def test_link_loss_rate_statistics():
    sim = Simulator()
    received = []
    link = Link(sim, "lossy", delay=0.0, bandwidth=1e9,
                deliver=lambda p: received.append(p),
                loss_rate=0.3, streams=RandomStreams(1))
    for _ in range(2000):
        link.send(Packet("a", "b", "tcp", 100))
    sim.run()
    loss = link.stats.loss_fraction
    assert 0.25 < loss < 0.35
    assert len(received) == link.stats.packets_delivered
    assert link.stats.packets_offered == 2000


def test_link_tail_drop_on_queue_overflow():
    sim = Simulator()
    delivered = []
    link = Link(sim, "tiny", delay=0.0, bandwidth=100.0,
                deliver=lambda p: delivered.append(p),
                queue_limit_bytes=250)
    accepted = [link.send(Packet("a", "b", "tcp", 100)) for _ in range(5)]
    sim.run()
    assert accepted[0] and accepted[1]
    assert not all(accepted)
    assert link.stats.packets_dropped_queue >= 1
    assert len(delivered) == sum(accepted)


def test_link_jitter_preserves_fifo():
    sim = Simulator()
    order = []
    link = Link(sim, "jit", delay=0.01, bandwidth=1e9,
                deliver=lambda p: order.append(p.uid),
                jitter=0.05, streams=RandomStreams(3))
    pkts = [Packet("a", "b", "tcp", 100) for _ in range(50)]
    for p in pkts:
        link.send(p)
    sim.run()
    assert order == [p.uid for p in pkts]


def test_link_parameter_validation():
    sim = Simulator()
    deliver = lambda p: None
    with pytest.raises(ValueError):
        Link(sim, "x", delay=-1, bandwidth=1, deliver=deliver)
    with pytest.raises(ValueError):
        Link(sim, "x", delay=0, bandwidth=0, deliver=deliver)
    with pytest.raises(ValueError):
        Link(sim, "x", delay=0, bandwidth=1, deliver=deliver, loss_rate=1.0)


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------
def test_dijkstra_simple_chain():
    graph = {"a": {"b": 1.0}, "b": {"a": 1.0, "c": 2.0}, "c": {"b": 2.0}}
    distances, hops = dijkstra(graph, "a")
    assert distances["c"] == pytest.approx(3.0)
    assert hops["c"] == "b"
    assert hops["b"] == "b"


def test_dijkstra_prefers_shorter_path():
    graph = {
        "a": {"b": 1.0, "c": 10.0},
        "b": {"a": 1.0, "c": 1.0},
        "c": {"a": 10.0, "b": 1.0},
    }
    distances, hops = dijkstra(graph, "a")
    assert distances["c"] == pytest.approx(2.0)
    assert hops["c"] == "b"


def test_dijkstra_unreachable_absent():
    graph = {"a": {"b": 1.0}, "b": {"a": 1.0}, "island": {}}
    distances, hops = dijkstra(graph, "a")
    assert "island" not in distances
    assert "island" not in hops


def test_dijkstra_rejects_negative_weight():
    with pytest.raises(ValueError):
        dijkstra({"a": {"b": -1.0}, "b": {}}, "a")


def test_build_routing_tables_all_sources():
    graph = {"a": {"b": 1.0}, "b": {"a": 1.0, "c": 1.0}, "c": {"b": 1.0}}
    tables = build_routing_tables(graph)
    assert tables["a"]["c"] == "b"
    assert tables["c"]["a"] == "b"


# ---------------------------------------------------------------------------
# topology end-to-end
# ---------------------------------------------------------------------------
def test_topology_routes_and_forwarding():
    sim = Simulator()
    topo = Topology(sim)
    for name in ("a", "r", "b"):
        topo.add_node(name)
    topo.connect("a", "r", delay=0.005, bandwidth=units.mbps(100))
    topo.connect("r", "b", delay=0.010, bandwidth=units.mbps(100))
    topo.build_routes()

    got = []
    topo.node("b").register_protocol("test", lambda p: got.append(sim.now))
    pkt = Packet("a", "b", "test", 100)
    topo.node("a").send(pkt)
    sim.run()
    assert len(got) == 1
    assert got[0] > 0.015  # at least the propagation delays
    assert pkt.hops == ["a", "r"]
    assert topo.node("r").stats.forwarded == 1


def test_topology_path_delay_and_rtt():
    sim = Simulator()
    topo = Topology(sim)
    for name in ("a", "r", "b"):
        topo.add_node(name)
    topo.connect("a", "r", delay=0.005, bandwidth=units.mbps(10))
    topo.connect("r", "b", delay=0.010, bandwidth=units.mbps(10))
    assert topo.path_delay("a", "b") == pytest.approx(0.015)
    assert topo.rtt("a", "b") == pytest.approx(0.030)


def test_topology_geo_derived_delay():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_node("msp", GeoPoint(44.98, -93.27))
    topo.add_node("chi", GeoPoint(41.88, -87.63))
    forward, backward = topo.connect("msp", "chi",
                                     bandwidth=units.mbps(100))
    # ~355 miles * 1.6 inflation / fiber speed ~= 4.6 ms one-way.
    assert 0.003 < forward.delay < 0.007
    assert forward.delay == backward.delay


def test_topology_requires_some_delay_source():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_node("x")
    topo.add_node("y")
    with pytest.raises(ValueError):
        topo.connect("x", "y")


def test_topology_duplicate_node_rejected():
    topo = Topology(Simulator())
    topo.add_node("n")
    with pytest.raises(ValueError):
        topo.add_node("n")


def test_node_drops_without_route_or_handler():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_node("a")
    topo.add_node("b")
    topo.connect("a", "b", delay=0.001, bandwidth=units.mbps(1))
    topo.build_routes()
    # No handler registered on b for protocol "nope".
    topo.node("a").send(Packet("a", "b", "nope", 10))
    # No route at all to "ghost".
    assert topo.node("a").send(Packet("a", "ghost", "tcp", 10)) is False
    sim.run()
    assert topo.node("b").stats.dropped_no_handler == 1
    assert topo.node("a").stats.dropped_no_route == 1


def test_node_taps_observe_events():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_node("a")
    topo.add_node("b")
    topo.connect("a", "b", delay=0.001, bandwidth=units.mbps(1))
    topo.build_routes()
    topo.node("b").register_protocol("t", lambda p: None)
    events = []
    topo.node("a").add_tap(lambda e, p: events.append(("a", e)))
    topo.node("b").add_tap(lambda e, p: events.append(("b", e)))
    topo.node("a").send(Packet("a", "b", "t", 10))
    sim.run()
    assert ("a", "send") in events
    assert ("b", "recv") in events
