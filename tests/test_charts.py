"""Tests for the ASCII chart helpers."""

import pytest

from repro.analysis.charts import cdf_plot, hbox_plot, scatter, sparkline
from repro.analysis.stats import BoxStats


def test_scatter_renders_all_series():
    text = scatter({"alpha": [(0, 0), (10, 10)],
                    "beta": [(5, 5)]},
                   width=30, height=10, xlabel="rtt", ylabel="ms")
    assert "o=alpha" in text
    assert "x=beta" in text
    assert "(x: rtt, y: ms)" in text
    # Corner points appear at the extremes.
    lines = text.splitlines()
    assert "o" in lines[0]          # top row has the (10, 10) point
    assert "o" in lines[9]          # bottom row has the (0, 0) point


def test_scatter_marks_collisions():
    text = scatter({"a": [(1, 1)], "b": [(1, 1)]}, width=10, height=5)
    assert "?" in text


def test_scatter_requires_points():
    with pytest.raises(ValueError):
        scatter({"empty": []})


def test_scatter_single_point_degenerate_ranges():
    text = scatter({"only": [(3.0, 7.0)]}, width=12, height=6)
    assert "o" in text


def test_cdf_plot_axis_label():
    points = [(i, (i + 1) / 10) for i in range(10)]
    text = cdf_plot({"svc": points}, xlabel="RTT ms")
    assert "fraction <= x" in text
    assert "RTT ms" in text


def test_hbox_plot_shapes():
    boxes = [("node-a", BoxStats(1, 2, 3, 4, 5)),
             ("node-b", BoxStats(2, 3, 4, 5, 6))]
    text = hbox_plot(boxes, width=40)
    lines = text.splitlines()
    assert len(lines) == 3
    for line in lines[:2]:
        assert "O" in line          # median marker
        assert "=" in line          # IQR box
        assert line.count("|") >= 2  # whisker ends + frame
    with pytest.raises(ValueError):
        hbox_plot([])


def test_hbox_labels_truncated():
    long_label = "x" * 100
    text = hbox_plot([(long_label, BoxStats(1, 2, 3, 4, 5))],
                     label_width=10)
    assert text.splitlines()[0].startswith("x" * 10 + " ")


def test_sparkline_trend():
    rising = sparkline([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
    assert len(rising) == 10
    assert rising[0] == " " and rising[-1] == "@"
    with pytest.raises(ValueError):
        sparkline([])


def test_sparkline_downsamples():
    line = sparkline(list(range(1000)), width=20)
    assert len(line) == 20
