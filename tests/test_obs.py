"""Observability subsystem: registry/tracer units, gating, span trees.

The heavyweight check here is span-tree correctness for a full
Dataset-A campaign: every landmark event on a traced ``session`` span
must equal the corresponding timestamp that
:func:`repro.core.metrics.extract_timeline` computes from the same
packet capture — the spans are the paper's Figure-2 decomposition and
must never drift from the analysis pipeline.
"""

from fractions import Fraction

import pytest

from repro import obs
from repro.content.keywords import Keyword
from repro.core.metrics import extract_all_calibrated
from repro.experiments.common import calibrate_frontends_used
from repro.measure.driver import run_dataset_a
from repro.obs import runtime
from repro.obs.metrics import Histogram, MetricsSnapshot
from repro.obs.record import landmarks
from repro.testbed.scenario import Scenario, ScenarioConfig


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Each test starts and ends with tracing off and state empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _campaign(**kwargs):
    scenario = Scenario(ScenarioConfig(seed=11, vantage_count=4,
                                       keyed_service_draws=True,
                                       deterministic_services=True))
    keyword = Keyword(text="observability test", popularity=0.7,
                      complexity=0.4)
    dataset = run_dataset_a(scenario, [keyword], repeats=3, interval=4.0,
                            services=[Scenario.GOOGLE], **kwargs)
    return scenario, dataset


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
def test_histogram_buckets_and_exact_sum():
    hist = Histogram(bounds=(1.0, 2.0))
    for value in (0.5, 1.0, 1.5, 3.0):
        hist.observe(value)
    assert hist.counts == [2, 1, 1]      # <=1.0, <=2.0, overflow
    assert hist.count == 4
    assert hist.total == Fraction(0.5) + Fraction(1.0) + Fraction(1.5) \
        + Fraction(3.0)
    assert (hist.minimum, hist.maximum) == (0.5, 3.0)


def test_snapshot_merge_is_order_independent_and_exact():
    reg = obs.MetricsRegistry()
    # Values chosen so float summation order would matter without the
    # Fraction accumulator: (a + b) + c != a + (b + c) in binary64.
    values = [0.1, 0.2, 0.3]
    snaps = []
    for value in values:
        reg.clear()
        reg.inc("c", 2)
        reg.observe("h", value, bounds=(1.0,))
        snaps.append(reg.snapshot())
    forward = MetricsSnapshot.merge(snaps)
    backward = MetricsSnapshot.merge(list(reversed(snaps)))
    assert forward.counters == backward.counters == {"c": 6}
    assert forward.histograms["h"] == backward.histograms["h"]
    assert forward.histograms["h"]["total"] == sum(
        (Fraction(v) for v in values), Fraction(0))


def test_snapshot_subtract_yields_campaign_delta():
    reg = obs.MetricsRegistry()
    reg.inc("c", 5)
    reg.observe("h", 1.0)
    base = reg.snapshot()
    reg.inc("c", 3)
    reg.inc("new", 1)
    reg.observe("h", 2.0)
    delta = reg.snapshot().subtract(base)
    assert delta.counters == {"c": 3, "new": 1}
    assert delta.histograms["h"]["count"] == 1
    assert delta.histograms["h"]["total"] == Fraction(2.0)


def test_registry_restore_then_absorb_round_trips():
    reg = obs.MetricsRegistry()
    reg.inc("c", 4)
    reg.observe("h", 0.5)
    snap = reg.snapshot()
    reg.inc("c", 10)
    reg.restore(snap)
    assert reg.snapshot().counters == {"c": 4}
    reg.absorb(snap)
    merged = reg.snapshot()
    assert merged.counters == {"c": 8}
    assert merged.histograms["h"]["count"] == 2


def test_scoped_filters_by_metric_scope():
    reg = obs.MetricsRegistry()
    reg.inc("sim.c", 1, scope=obs.SCOPE_SIM)
    reg.inc("host.c", 1, scope=obs.SCOPE_HOST)
    snap = reg.snapshot()
    assert set(snap.scoped(obs.SCOPE_SIM).counters) == {"sim.c"}
    assert set(snap.scoped(obs.SCOPE_HOST).counters) == {"host.c"}


# ---------------------------------------------------------------------------
# gating
# ---------------------------------------------------------------------------
def test_disabled_campaign_records_nothing():
    scenario, dataset = _campaign()
    assert dataset.trace is None
    assert dataset.obs_metrics is None
    assert runtime.tracer.spans == []
    assert runtime.metrics.snapshot().counters == {}


def test_enabled_campaign_attaches_trace_and_metrics():
    obs.enable()
    scenario, dataset = _campaign()
    assert len(dataset.trace) == len(dataset.sessions) == 12
    counters = dataset.obs_metrics.counters
    assert counters["campaign.sessions.completed"] == 12
    assert counters["fe.requests"] == 12
    assert counters["be.queries"] == 12
    assert counters["engine.events_processed"] > 0


def test_env_gating(monkeypatch):
    for value, expect in (("", False), ("0", False), ("off", False),
                          ("no", False), ("1", True), ("on", True),
                          ("trace.jsonl", True)):
        monkeypatch.setenv("REPRO_TRACE", value)
        obs.configure_from_env()
        assert obs.enabled() is expect, value
    monkeypatch.delenv("REPRO_TRACE")
    obs.configure_from_env()
    assert not obs.enabled()


def test_env_trace_path_extraction(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    assert obs.env_trace_path() is None
    monkeypatch.setenv("REPRO_TRACE", "out/campaign.jsonl")
    assert obs.env_trace_path() == "out/campaign.jsonl"
    monkeypatch.delenv("REPRO_TRACE")
    assert obs.env_trace_path() is None


def test_replay_stats_surface_through_registry():
    obs.enable()
    scenario, dataset = _campaign(replay_cache=True)
    assert dataset.replay is not None
    counters = dataset.obs_metrics.counters
    recorded = sum(counters.get(name, 0) for name in
                   ("replay.hits", "replay.misses"))
    recorded += sum(value for name, value in counters.items()
                    if name.startswith("replay.bypass."))
    assert recorded == len(dataset.sessions)
    assert counters.get("replay.hits", 0) == dataset.replay.hits


# ---------------------------------------------------------------------------
# span tree correctness for a full Dataset-A campaign
# ---------------------------------------------------------------------------
def test_session_span_landmarks_match_extracted_timelines():
    obs.enable()
    scenario, dataset = _campaign()
    calibration = calibrate_frontends_used(scenario, Scenario.GOOGLE,
                                           dataset.sessions)
    metrics = extract_all_calibrated(dataset.sessions, calibration)
    assert len(metrics) == len(dataset.sessions)
    obs.annotate_boundaries(metrics)

    spans = {span["attrs"]["query_id"]: span for span in dataset.trace}
    assert len(spans) == len(dataset.sessions)
    by_query = runtime.tracer.session_spans()
    for qm in metrics:
        session = qm.session
        timeline = qm.timeline
        # dataset.trace snapshots pre-annotation; the live tracer span
        # carries the full timeline.
        span = by_query[session.query_id]
        assert span.start == session.started_at
        assert span.end == session.completed_at
        events = dict((name, time) for time, name in span.events)
        assert events["tb"] == timeline.tb
        assert events["t1"] == timeline.t1
        assert events["t2"] == timeline.t2
        assert events["t3"] == timeline.t3
        assert events["t4"] == timeline.t4
        assert events["t5"] == timeline.t5
        assert events["te"] == timeline.te

        children = {child.name: child for child in span.children}
        assert children["phase.connect"].start == timeline.tb
        assert children["phase.connect"].end == timeline.t1
        assert children["phase.request"].end == timeline.t2
        assert children["phase.response"].start == timeline.t3
        assert children["phase.response"].end == timeline.te
        assert children["phase.static"].end == timeline.t4
        assert children["phase.dynamic"].start == timeline.t5

        # FE/BE ground-truth children match the service logs.
        deployment = scenario.service(session.service)
        frontend = deployment.frontend_by_name(session.fe_name)
        fetch = frontend.fetch_log[session.query_id]
        assert children["fe.fetch"].start == fetch.forwarded_at
        assert children["fe.fetch"].end == fetch.completed_at
        backend = deployment.backend_for_frontend(frontend)
        query = backend.query_log[session.query_id]
        assert children["be.query"].start == query.arrival_time
        assert children["be.query"].end == query.completed_time
        assert children["be.query"].attrs["tproc"] == query.tproc


def test_boundary_free_landmarks_match_extract_timeline():
    obs.enable()
    scenario, dataset = _campaign()
    calibration = calibrate_frontends_used(scenario, Scenario.GOOGLE,
                                           dataset.sessions)
    for qm in extract_all_calibrated(dataset.sessions, calibration):
        marks = landmarks(qm.session)
        assert marks["tb"] == qm.timeline.tb
        assert marks["t1"] == qm.timeline.t1
        assert marks["t2"] == qm.timeline.t2
        assert marks["t3"] == qm.timeline.t3
        assert marks["te"] == qm.timeline.te
        assert marks["rtt"] == qm.timeline.rtt


def test_spans_are_sim_time_only():
    obs.enable()
    scenario, dataset = _campaign()
    horizon = scenario.sim.now

    def check(span):
        assert 0.0 <= span["start"] <= span["end"] <= horizon
        for time, _ in span["events"]:
            assert 0.0 <= time <= horizon
        for child in span["children"]:
            check(child)

    for span in dataset.trace:
        check(span)
