"""Property-based tests for transport-layer invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.net.address import Endpoint
from repro.sim import units
from repro.tcp.buffers import Reassembler, SendBuffer

from .conftest import make_world
from .helpers import CollectorApp, RespondApp, make_payload


@given(chunks=st.lists(st.binary(min_size=0, max_size=200), max_size=20))
def test_send_buffer_reconstructs_stream(chunks):
    buf = SendBuffer()
    for chunk in chunks:
        buf.enqueue(chunk)
    stream = b"".join(chunks)
    assert buf.stream_length == len(stream)
    # Peek the whole stream in arbitrary-sized windows.
    out = bytearray()
    offset = 0
    while offset < len(stream):
        piece = buf.peek(offset, 7)
        out.extend(piece)
        offset += len(piece)
    assert bytes(out) == stream


@given(data=st.binary(min_size=1, max_size=2000),
       seed=st.integers(min_value=0, max_value=2**32 - 1),
       segment_size=st.integers(min_value=1, max_value=97))
def test_reassembler_handles_any_arrival_order(data, seed, segment_size):
    segments = [(off, data[off:off + segment_size])
                for off in range(0, len(data), segment_size)]
    rng = random.Random(seed)
    # Shuffle, duplicate some segments, and deliver everything.
    sequence = segments + rng.sample(segments, k=min(5, len(segments)))
    rng.shuffle(sequence)
    r = Reassembler(window_bytes=1 << 22)
    out = bytearray()
    for offset, payload in sequence:
        out.extend(r.offer(offset, payload))
    assert bytes(out) == data
    assert r.next_expected == len(data)
    assert r.gaps() == []


@settings(max_examples=12, deadline=None)
@given(size=st.integers(min_value=1, max_value=120_000),
       loss=st.sampled_from([0.0, 0.01, 0.05]),
       seed=st.integers(min_value=0, max_value=1000))
def test_end_to_end_transfer_integrity_under_loss(size, loss, seed):
    """Any transfer must deliver exactly the sent bytes, in order."""
    world = make_world(rtt=units.ms(30), loss_rate=loss, seed=seed)
    payload = make_payload(size, tag=b"P")
    world.server.listen(80, lambda: RespondApp(payload, close_after=True))
    client = CollectorApp(request=b"G")
    world.client.connect(Endpoint("server", 80), client)
    world.run(until=600.0)
    assert bytes(client.received) == payload


@settings(max_examples=10, deadline=None)
@given(size=st.integers(min_value=1, max_value=80_000),
       loss=st.sampled_from([0.0, 0.02]),
       seed=st.integers(min_value=0, max_value=500),
       algorithm=st.sampled_from(["reno", "cubic"]))
def test_transfer_integrity_any_congestion_control(size, loss, seed,
                                                   algorithm):
    """Reliability must hold for every congestion-control algorithm."""
    from repro.tcp.config import TcpConfig

    config = TcpConfig(congestion=algorithm)
    world = make_world(rtt=units.ms(25), loss_rate=loss, seed=seed,
                       client_config=config, server_config=config)
    payload = make_payload(size, tag=b"A")
    world.server.listen(80, lambda: RespondApp(payload, close_after=True))
    client = CollectorApp(request=b"G")
    world.client.connect(Endpoint("server", 80), client)
    world.run(until=600.0)
    assert bytes(client.received) == payload
