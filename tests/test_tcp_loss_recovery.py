"""Deterministic loss-recovery tests using link fault injection.

Each test drops specific packets (by offer index or content) and checks
that TCP recovers through the intended mechanism — fast retransmit,
RTO, SYN retry — with the right counters and rough timing.
"""

import pytest

from repro.net.address import Endpoint
from repro.sim import units
from repro.tcp.config import TcpConfig

from .conftest import make_world
from .helpers import CollectorApp, RespondApp, SinkApp, make_payload

RTT = units.ms(40)


def server_to_client_link(world):
    return world.topology.node("server").links["client"]


def client_to_server_link(world):
    return world.topology.node("client").links["server"]


def drop_offer_indices(indices):
    targets = set(indices)
    return lambda packet, index: index in targets


def test_fast_retransmit_recovers_mid_stream_loss():
    world = make_world(rtt=RTT)
    payload = make_payload(60_000)
    world.server.listen(80, lambda: RespondApp(payload, close_after=True))
    client = CollectorApp(request=b"G")
    conn = world.client.connect(Endpoint("server", 80), client)

    # Drop one data segment mid-transfer (enough later packets exist to
    # generate 3 dupacks -> fast retransmit, no RTO).
    link = server_to_client_link(world)
    link.fault_filter = drop_offer_indices({10})
    world.sim.run()

    assert bytes(client.received) == payload
    server_conn = next(iter(world.server.connections.values()), None)
    # The server side did the retransmitting; find its stats via totals.
    assert link.stats.packets_lost == 1
    # Recovery must not have needed a timeout.
    total_timeouts = sum(c.stats.timeouts
                         for c in world.server.connections.values())
    assert total_timeouts == 0


def test_tail_loss_requires_rto():
    """Dropping the final segment leaves too few dupacks: RTO fires."""
    world = make_world(rtt=RTT)
    payload = make_payload(20_000)
    server_holder = {}

    def factory():
        app = RespondApp(payload, close_after=False)
        server_holder["app"] = app
        return app

    world.server.listen(80, factory)
    client = CollectorApp(request=b"G")
    world.client.connect(Endpoint("server", 80), client)

    link = server_to_client_link(world)
    # 20000 B at MSS 1460 -> 14 data segments.  Drop the last one (its
    # first transmission): no later packets exist, so no dupacks, and
    # recovery must come from the retransmission timer.
    data_offers = []

    def drop_last_data_segment(packet, index):
        segment = packet.payload
        if segment.data and not segment.retransmit:
            data_offers.append(index)
            if len(data_offers) == 14:  # the 14th response segment
                return True
        return False

    link.fault_filter = drop_last_data_segment
    world.sim.run(until=30.0)

    assert bytes(client.received) == payload
    total_timeouts = sum(c.stats.timeouts
                         for c in world.server.connections.values())
    assert total_timeouts >= 1


def test_lost_syn_retried_after_initial_rto():
    world = make_world(rtt=RTT)
    world.server.listen(80, SinkApp)
    client = CollectorApp(request=b"hello")
    link = client_to_server_link(world)
    link.fault_filter = drop_offer_indices({0})  # the first SYN
    world.client.connect(Endpoint("server", 80), client)
    world.sim.run(until=30.0)
    # Established roughly one initial RTO (1 s) late.
    assert client.established_at == pytest.approx(1.0 + RTT, abs=0.2)


def test_lost_syn_ack_retried():
    world = make_world(rtt=RTT)
    world.server.listen(80, SinkApp)
    client = CollectorApp(request=b"hi")
    link = server_to_client_link(world)
    link.fault_filter = drop_offer_indices({0})  # the SYN-ACK
    world.client.connect(Endpoint("server", 80), client)
    world.sim.run(until=30.0)
    assert client.established_at is not None
    assert client.established_at > 0.9  # waited for a retry


def test_lost_request_is_retransmitted():
    world = make_world(rtt=RTT)
    echo_received = []

    class Recorder(SinkApp):
        def on_data(self, conn, data):
            super().on_data(conn, data)
            echo_received.append(data)

    world.server.listen(80, Recorder)
    client = CollectorApp(request=b"the query")
    link = client_to_server_link(world)
    # Offer 0 = SYN (keep), offer 1 = GET data (drop), offer 2 = the
    # pure handshake ACK (keep).
    link.fault_filter = drop_offer_indices({1})
    conn = world.client.connect(Endpoint("server", 80), client)
    world.sim.run(until=30.0)
    assert b"".join(echo_received) == b"the query"
    assert conn.stats.retransmissions + conn.stats.timeouts >= 1


def test_lost_ack_is_harmless():
    """Pure-ACK losses must not stall a transfer (cumulative ACKs)."""
    world = make_world(rtt=RTT)
    payload = make_payload(40_000)
    world.server.listen(80, lambda: RespondApp(payload, close_after=True))
    client = CollectorApp(request=b"G")
    link = client_to_server_link(world)
    dropped = []

    def drop_every_third_pure_ack(packet, index):
        segment = packet.payload
        if (segment.ack_flag and not segment.data and not segment.syn
                and not segment.fin):
            if len(dropped) % 3 == 0:
                dropped.append(index)
                return True
            dropped.append(-1)
        return False

    link.fault_filter = drop_every_third_pure_ack
    world.client.connect(Endpoint("server", 80), client)
    world.sim.run(until=60.0)
    assert bytes(client.received) == payload


def test_burst_loss_still_recovers():
    world = make_world(rtt=RTT)
    payload = make_payload(80_000)
    world.server.listen(80, lambda: RespondApp(payload, close_after=True))
    client = CollectorApp(request=b"G")
    link = server_to_client_link(world)
    link.fault_filter = drop_offer_indices({8, 9, 10, 11})
    world.client.connect(Endpoint("server", 80), client)
    world.sim.run(until=120.0)
    assert bytes(client.received) == payload


def test_fault_filter_counts_as_loss_in_stats():
    world = make_world(rtt=RTT)
    world.server.listen(80, SinkApp)
    client = CollectorApp(request=make_payload(5000),
                          close_after_send=True)
    link = client_to_server_link(world)
    link.fault_filter = drop_offer_indices({2})
    world.client.connect(Endpoint("server", 80), client)
    world.sim.run(until=30.0)
    assert link.stats.packets_lost == 1
    assert link.stats.loss_fraction > 0
