"""Dedicated tests for temporal clustering of packet events."""

import pytest

from repro.analysis.clustering import (
    EventCluster,
    adaptive_gap,
    classify_session,
    cluster_by_gap,
    handshake_rtt,
)
from repro.measure.capture import PacketEvent


def make_event(time, direction="in", payload_len=100, syn=False,
               ack_flag=True, seq=0):
    return PacketEvent(time=time, direction=direction, src="s", dst="c",
                       sport=80, dport=5000,
                       wire_size=40 + payload_len,
                       payload_len=payload_len, seq=seq, ack=0,
                       syn=syn, fin=False, ack_flag=ack_flag,
                       retransmit=False, payload=None)


def test_cluster_by_gap_splits_at_gaps():
    events = [make_event(t) for t in (0.0, 0.001, 0.002,
                                      0.100, 0.101,
                                      0.300)]
    clusters = cluster_by_gap(events, gap=0.050)
    assert [len(c.events) for c in clusters] == [3, 2, 1]
    assert clusters[0].span == pytest.approx(0.002)
    assert clusters[1].start == pytest.approx(0.100)


def test_cluster_by_gap_single_cluster():
    events = [make_event(t) for t in (0.0, 0.01, 0.02)]
    clusters = cluster_by_gap(events, gap=0.5)
    assert len(clusters) == 1
    assert clusters[0].payload_bytes == 300


def test_cluster_by_gap_empty_and_validation():
    assert cluster_by_gap([], gap=0.1) == []
    with pytest.raises(ValueError):
        cluster_by_gap([], gap=0)


def test_event_cluster_properties():
    cluster = EventCluster(events=[make_event(1.0, syn=True),
                                   make_event(1.5)])
    assert cluster.start == 1.0
    assert cluster.end == 1.5
    assert cluster.span == 0.5
    assert cluster.has_handshake


class FakeSession:
    def __init__(self, events, query_id="q"):
        self.events = events
        self.query_id = query_id

    def inbound_data_events(self):
        return [e for e in self.events
                if e.direction == "in" and e.payload_len > 0]


def handshake_events(rtt=0.040):
    return [make_event(0.0, direction="out", payload_len=0, syn=True,
                       ack_flag=False),
            make_event(rtt, direction="in", payload_len=0, syn=True)]


def test_handshake_rtt_extraction():
    session = FakeSession(handshake_events(rtt=0.123))
    assert handshake_rtt(session) == pytest.approx(0.123)
    with pytest.raises(ValueError):
        handshake_rtt(FakeSession([make_event(0.0)]))


def test_adaptive_gap_scales_with_rtt():
    fast = FakeSession(handshake_events(rtt=0.004))
    slow = FakeSession(handshake_events(rtt=0.200))
    assert adaptive_gap(fast) == pytest.approx(0.004)  # floor
    assert adaptive_gap(slow) == pytest.approx(0.100)  # rtt/2


def test_classify_session_separated_bursts():
    rtt = 0.040
    events = handshake_events(rtt)
    events.append(make_event(rtt, direction="out", payload_len=80))
    # Static burst then a big gap then the dynamic burst.
    for t in (0.08, 0.081, 0.082):
        events.append(make_event(t))
    for t in (0.40, 0.401):
        events.append(make_event(t))
    clusters = classify_session(FakeSession(events))
    assert clusters.handshake.has_handshake
    assert len(clusters.bursts) == 2
    assert not clusters.merged
    assert clusters.gap_after_first_burst == pytest.approx(0.318)


def test_classify_session_merged_bursts():
    rtt = 0.040
    events = handshake_events(rtt)
    events.append(make_event(rtt, direction="out", payload_len=80))
    for t in (0.08, 0.081, 0.082, 0.083):
        events.append(make_event(t))
    clusters = classify_session(FakeSession(events))
    assert clusters.merged
    assert clusters.gap_after_first_burst == 0.0


def test_classify_session_requires_data():
    session = FakeSession(handshake_events())
    with pytest.raises(ValueError):
        classify_session(session)
