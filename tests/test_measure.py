"""Tests for capture, the query emulator, and the campaign drivers."""

import pytest

from repro.content.keywords import Keyword, KeywordCatalog
from repro.measure.driver import (
    run_dataset_a,
    run_dataset_b,
    run_single_queries,
)
from repro.measure.emulator import QueryEmulator
from repro.testbed.scenario import Scenario, ScenarioConfig


def kw(text="probe query", popularity=0.5, complexity=0.5):
    return Keyword(text=text, popularity=popularity, complexity=complexity)


@pytest.fixture
def scenario():
    return Scenario(ScenarioConfig(seed=6, vantage_count=8))


def test_single_query_session_end_to_end(scenario):
    vp = scenario.vantage_points[0]
    emulator = QueryEmulator(scenario, vp, store_payload=True)
    session = emulator.submit_default(Scenario.GOOGLE, kw())
    scenario.sim.run()
    assert session.complete
    assert session.duration > 0
    assert session.response_size > 10_000
    assert session.local_port >= 49152
    assert session.path_rtt > 0

    events = session.events
    assert events, "session must carry a packet trace"
    # First event is the outbound SYN.
    assert events[0].direction == "out" and events[0].syn
    # There is an inbound SYN-ACK.
    assert any(e.direction == "in" and e.syn and e.ack_flag for e in events)
    # Inbound data bytes total at least the response size.
    inbound_payload = sum(e.payload_len for e in session.inbound_data_events())
    assert inbound_payload >= session.response_size
    # Payload bytes stored on request.
    assert any(e.payload for e in session.inbound_data_events())


def test_capture_payload_storage_optional(scenario):
    vp = scenario.vantage_points[1]
    emulator = QueryEmulator(scenario, vp, store_payload=False)
    session = emulator.submit_default(Scenario.GOOGLE, kw())
    scenario.sim.run()
    assert session.complete
    assert all(e.payload is None for e in session.events)
    assert any(e.payload_len > 0 for e in session.events)


def test_sessions_are_isolated_per_connection(scenario):
    vp = scenario.vantage_points[2]
    emulator = QueryEmulator(scenario, vp)
    s1 = emulator.submit_default(Scenario.GOOGLE, kw("first"))
    s2 = emulator.submit_default(Scenario.BING, kw("second"))
    scenario.sim.run()
    assert s1.complete and s2.complete
    assert s1.local_port != s2.local_port
    ports_1 = {e.local_port for e in s1.events}
    ports_2 = {e.local_port for e in s2.events}
    assert ports_1 == {s1.local_port}
    assert ports_2 == {s2.local_port}


def test_dataset_a_runs_all_nodes_and_services(scenario):
    keywords = KeywordCatalog(seed=1).figure3_set()
    dataset = run_dataset_a(scenario, keywords, repeats=2, interval=2.0)
    expected = len(scenario.vantage_points) * 2 * 2  # vps x repeats x services
    assert len(dataset.sessions) == expected
    assert all(s.complete for s in dataset.sessions)
    # Default FE map covers every (vp, service).
    assert len(dataset.default_fe) == len(scenario.vantage_points) * 2
    google = dataset.for_service(Scenario.GOOGLE)
    assert len(google) == expected / 2
    vp0 = scenario.vantage_points[0].name
    assert len(dataset.for_vp(vp0)) == 4
    assert len(dataset.for_vp(vp0, Scenario.BING)) == 2


def test_dataset_b_fixed_fe(scenario):
    service = scenario.service(Scenario.BING)
    frontend = service.frontends[0]
    dataset = run_dataset_b(scenario, Scenario.BING, frontend, kw("fixed"),
                            repeats=3, interval=1.0)
    assert dataset.fe_name == frontend.node.name
    assert len(dataset.sessions) == len(scenario.vantage_points) * 3
    assert all(s.fe_name == frontend.node.name for s in dataset.sessions)
    assert all(s.complete for s in dataset.sessions)
    vp0 = scenario.vantage_points[0].name
    assert len(dataset.for_vp(vp0)) == 3


def test_run_single_queries_assignments(scenario):
    service = scenario.service(Scenario.GOOGLE)
    frontend = service.frontends[0]
    assignments = [(vp, kw("unique-%d" % i))
                   for i, vp in enumerate(scenario.vantage_points[:5])]
    sessions = run_single_queries(scenario, Scenario.GOOGLE, frontend,
                                  assignments, spacing=0.5)
    assert len(sessions) == 5
    assert all(s.complete for s in sessions)
    assert len({s.keyword.text for s in sessions}) == 5
    # Sequential spacing respected.
    starts = sorted(s.started_at for s in sessions)
    assert starts[1] - starts[0] == pytest.approx(0.5)


def test_dataset_a_rejects_empty_keywords(scenario):
    with pytest.raises(ValueError):
        run_dataset_a(scenario, [])
