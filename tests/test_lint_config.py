"""Configuration, CLI, and JSON-schema tests for simlint."""

import json
import os

import pytest

from repro.lint import (
    LintConfig,
    LintConfigError,
    LintRunner,
    all_rules,
    load_config,
)
from repro.lint.cli import JSON_SCHEMA_VERSION, main

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "data", "lint")

MIXED_SOURCE = (
    "import time\n"
    "def t(rtt_ms, delay_s):\n"
    "    start = time.time()\n"
    "    return rtt_ms + delay_s\n"
)


def write_pyproject(tmp_path, body):
    path = tmp_path / "pyproject.toml"
    path.write_text("[tool.simlint]\n" + body, encoding="utf-8")
    return str(path)


# ---------------------------------------------------------------------------
# [tool.simlint] plumbing
# ---------------------------------------------------------------------------
def test_disable_removes_a_rule(tmp_path):
    config = load_config(write_pyproject(tmp_path, 'disable = ["DET001"]\n'))
    findings = LintRunner(config).run_source(MIXED_SOURCE, path="x.py")
    assert {f.rule for f in findings} == {"UNIT002"}


def test_enable_runs_only_listed_rules(tmp_path):
    config = load_config(write_pyproject(tmp_path, 'enable = ["DET001"]\n'))
    findings = LintRunner(config).run_source(MIXED_SOURCE, path="x.py")
    assert {f.rule for f in findings} == {"DET001"}


def test_unknown_rule_in_config_raises(tmp_path):
    with pytest.raises(LintConfigError, match="NOPE999"):
        load_config(write_pyproject(tmp_path, 'disable = ["NOPE999"]\n'))


def test_unknown_config_key_raises(tmp_path):
    with pytest.raises(LintConfigError, match="colour"):
        load_config(write_pyproject(tmp_path, 'colour = ["DET001"]\n'))


def test_exclude_skips_matching_paths(tmp_path):
    config = load_config(write_pyproject(
        tmp_path, 'exclude = ["data/lint"]\n'))
    runner = LintRunner(config)
    assert runner.run_paths([FIXTURES]) == []
    assert runner.files_scanned == 0


def test_missing_config_file_means_defaults():
    config = load_config(None)
    assert config == LintConfig()
    assert len(config.selected_rules()) == len(all_rules())


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_exit_codes(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nstart = time.time()\n", encoding="utf-8")
    assert main([str(clean), "--no-config"]) == 0
    assert main([str(dirty), "--no-config"]) == 1


def test_cli_nonexistent_path_is_a_config_error(tmp_path, capsys):
    missing = str(tmp_path / "nope")
    assert main([missing, "--no-config"]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_cli_unknown_rule_is_a_config_error(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("x = 1\n", encoding="utf-8")
    assert main([str(target), "--no-config", "--select", "NOPE999"]) == 2
    assert "NOPE999" in capsys.readouterr().err


def test_cli_select_and_disable_flags(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text(MIXED_SOURCE, encoding="utf-8")
    assert main([str(target), "--no-config", "--select", "DET001",
                 "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in report["findings"]} == {"DET001"}
    assert main([str(target), "--no-config",
                 "--disable", "DET001,UNIT002"]) == 0


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in all_rules():
        assert rule_id in out


# ---------------------------------------------------------------------------
# JSON schema stability
# ---------------------------------------------------------------------------
def test_json_schema_is_stable(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text(MIXED_SOURCE, encoding="utf-8")
    exit_code = main([str(target), "--no-config", "--format", "json"])
    assert exit_code == 1
    report = json.loads(capsys.readouterr().out)
    # Top-level shape: fixed keys, nothing extra.  Additions require a
    # version bump plus a docs/LINTING.md update.
    assert sorted(report) == ["baselined", "counts", "errors",
                              "files_analyzed", "files_from_cache",
                              "files_scanned", "findings",
                              "signatures_from_cache", "suppressed",
                              "version"]
    assert report["version"] == JSON_SCHEMA_VERSION == 4
    assert report["files_scanned"] == 1
    assert report["files_analyzed"] == 1
    assert report["files_from_cache"] == 0
    assert report["errors"] == 0
    assert report["suppressed"] == 0
    assert report["baselined"] == 0
    assert sorted(report["counts"]) == ["error", "warning"]
    assert report["counts"]["error"] == len(report["findings"]) == 2
    for finding in report["findings"]:
        assert sorted(finding) == ["baselined", "col", "end_line", "line",
                                   "message", "path", "rule", "severity",
                                   "suppressed"]
        assert isinstance(finding["line"], int)
        assert finding["severity"] in ("error", "warning")


def test_sarif_output_is_structurally_valid(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text(MIXED_SOURCE, encoding="utf-8")
    assert main([str(target), "--no-config", "--format", "sarif"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == "2.1.0"
    assert "sarif" in report["$schema"]
    run = report["runs"][0]
    driver = run["tool"]["driver"]
    rule_ids = [r["id"] for r in driver["rules"]]
    # Catalogue covers every registered rule, sorted, and each result's
    # ruleIndex points back at its descriptor.
    assert rule_ids == sorted(all_rules())
    results = run["results"]
    assert {r["ruleId"] for r in results} == {"DET001", "UNIT002"}
    for result in results:
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1
        assert "suppressions" not in result


def test_sarif_marks_suppressed_findings(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("import time\n"
                      "s = time.time()  # simlint: ignore[DET001]\n",
                      encoding="utf-8")
    assert main([str(target), "--no-config", "--format", "sarif"]) == 0
    report = json.loads(capsys.readouterr().out)
    results = report["runs"][0]["results"]
    assert len(results) == 1
    assert results[0]["suppressions"][0]["kind"] == "inSource"


def test_findings_are_deterministically_ordered(tmp_path):
    runner = LintRunner(LintConfig())
    first = runner.run_source(MIXED_SOURCE, path="x.py")
    second = runner.run_source(MIXED_SOURCE, path="x.py")
    assert [f.as_dict() for f in first] == [f.as_dict() for f in second]
    assert [f.line for f in first] == sorted(f.line for f in first)
