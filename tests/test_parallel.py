"""Tests for the parallel campaign layer.

The load-bearing property is *bit-identical equivalence*: a campaign
sharded across processes must produce exactly the session list the
serial run produces — same timestamps, same packet traces, same draw
values — for the same seed.  Everything else (partitioning, pool
plumbing, seed sweeps) supports that.
"""

import pytest

from repro.content.keywords import Keyword
from repro.measure.driver import run_dataset_a
from repro.parallel import (
    HighFrontEndLoadError,
    fe_sharing_components,
    map_shards,
    partition_components,
    partition_round_robin,
    run_dataset_a_sharded,
    run_dataset_b_sharded,
    run_over_seeds,
)
from repro.testbed.scenario import Scenario, ScenarioConfig

# Sharded campaigns require per-query keyed service draws; the serial
# run in the equivalence test uses the same config so both sides see
# identical RNG realizations.
CONFIG = ScenarioConfig(seed=3, vantage_count=14,
                        keyed_service_draws=True)

KEYWORDS = [
    Keyword(text="alpha query", popularity=0.6, complexity=0.3),
    Keyword(text="beta query terms", popularity=0.2, complexity=0.7),
]


def session_fingerprint(session):
    """Every observable of one session, for exact comparison."""
    return (
        session.query_id, session.service, session.vp_name,
        session.fe_name, session.local_port, session.started_at,
        session.completed_at, session.failed, session.response_size,
        session.path_rtt,
        tuple((e.time, e.direction, e.src, e.dst, e.sport, e.dport,
               e.wire_size, e.payload_len, e.seq, e.ack, e.syn, e.fin,
               e.ack_flag, e.retransmit)
              for e in session.events),
    )


# ---------------------------------------------------------------------------
# equivalence
# ---------------------------------------------------------------------------
def test_dataset_a_sharded_bit_identical_to_serial():
    serial_scenario = Scenario(CONFIG)
    serial = run_dataset_a(serial_scenario, KEYWORDS,
                           repeats=2, interval=1.0)

    sharded_scenario = Scenario(CONFIG)
    sharded = run_dataset_a_sharded(sharded_scenario, KEYWORDS,
                                    repeats=2, interval=1.0,
                                    shards=3, processes=2)

    assert serial.default_fe == sharded.default_fe
    assert list(serial.default_fe) == list(sharded.default_fe)
    assert len(serial.sessions) == len(sharded.sessions) > 0
    for ours, theirs in zip(serial.sessions, sharded.sessions):
        assert session_fingerprint(ours) == session_fingerprint(theirs)


def test_dataset_a_sharded_inline_matches_pool():
    # processes=1 exercises the inline fallback over the same partition.
    scenario_a = Scenario(CONFIG)
    pooled = run_dataset_a_sharded(scenario_a, KEYWORDS,
                                   repeats=1, interval=1.0,
                                   shards=3, processes=2)
    scenario_b = Scenario(CONFIG)
    inline = run_dataset_a_sharded(scenario_b, KEYWORDS,
                                   repeats=1, interval=1.0,
                                   shards=3, processes=1)
    assert ([session_fingerprint(s) for s in pooled.sessions]
            == [session_fingerprint(s) for s in inline.sessions])


# ---------------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------------
def test_partition_keeps_fe_sharing_vps_together():
    scenario = Scenario(CONFIG)
    shards = partition_components(
        fe_sharing_components(scenario), 4)
    shard_of_vp = {vp.name: index
                   for index, shard in enumerate(shards)
                   for vp in shard}
    assert sorted(shard_of_vp) == sorted(
        vp.name for vp in scenario.vantage_points)
    for service_name in scenario.services:
        by_fe = {}
        for vp in scenario.vantage_points:
            fe = scenario.default_frontend(service_name, vp).node.name
            by_fe.setdefault(fe, set()).add(shard_of_vp[vp.name])
        for fe, shard_ids in by_fe.items():
            assert len(shard_ids) == 1, (
                "VPs sharing FE %s split across shards %s"
                % (fe, sorted(shard_ids)))


def test_partition_round_robin_covers_everyone():
    scenario = Scenario(CONFIG)
    shards = partition_round_robin(scenario.vantage_points, 4)
    names = [vp.name for shard in shards for vp in shard]
    assert sorted(names) == sorted(
        vp.name for vp in scenario.vantage_points)
    sizes = [len(shard) for shard in shards]
    assert max(sizes) - min(sizes) <= 1


# ---------------------------------------------------------------------------
# pool plumbing
# ---------------------------------------------------------------------------
def _square(value):
    return value * value


def test_map_shards_preserves_submission_order():
    assert map_shards(_square, [3, 1, 2], processes=2) == [9, 1, 4]
    assert map_shards(_square, [3, 1, 2], processes=1) == [9, 1, 4]
    assert map_shards(_square, [], processes=4) == []


# ---------------------------------------------------------------------------
# seed sweeps
# ---------------------------------------------------------------------------
def test_run_over_seeds_runs_experiment_per_seed():
    from repro.experiments.common import ExperimentScale
    from repro.experiments.dataset_a import run_dataset_a_experiment

    scale = ExperimentScale(vantage_count=8, repeats=1, interval=1.0)
    results = run_over_seeds(run_dataset_a_experiment, scale, [1, 2],
                             processes=2)
    assert [r.scale.seed for r in results] == [1, 2]
    for result in results:
        for service, metrics in result.metrics.items():
            assert len(metrics) == 8  # one query per VP per service
    # Different seeds genuinely are different universes.
    assert results[0].default_rtts != results[1].default_rtts


def test_experiment_level_sharding_is_internally_consistent():
    from repro.experiments.common import ExperimentScale
    from repro.experiments.dataset_a import run_dataset_a_experiment

    # shards>1 switches the scenario into keyed-draw mode, so the
    # metric *values* differ from the serial default (different RNG
    # realization).  Within that mode the run must not depend on how
    # many processes host the shards, and build-deterministic outputs
    # (default-FE RTTs) must match the serial run exactly.
    scale = ExperimentScale(vantage_count=8, repeats=1, interval=1.0,
                            seed=5)
    serial = run_dataset_a_experiment(scale, shards=1)
    pooled = run_dataset_a_experiment(scale, shards=2, processes=2)
    inline = run_dataset_a_experiment(scale, shards=2, processes=1)
    assert serial.default_rtts == pooled.default_rtts
    assert pooled.default_rtts == inline.default_rtts
    assert sorted(pooled.metrics) == sorted(serial.metrics)
    for service in pooled.metrics:
        ours = [(m.rtt, m.tstatic, m.tdynamic, m.overall_delay)
                for m in pooled.metrics[service]]
        theirs = [(m.rtt, m.tstatic, m.tdynamic, m.overall_delay)
                  for m in inline.metrics[service]]
        assert ours == theirs
        assert len(ours) == len(serial.metrics[service])


def test_sharded_campaign_rejects_sequential_draw_scenario():
    scenario = Scenario(ScenarioConfig(seed=3, vantage_count=14))
    with pytest.raises(ValueError, match="keyed_service_draws"):
        run_dataset_a_sharded(scenario, KEYWORDS, repeats=1,
                              interval=1.0, shards=2, processes=1)


def test_run_over_seeds_rejects_load_sensitivity():
    from repro.experiments.load_sensitivity import run_load_sensitivity
    with pytest.raises(ValueError):
        run_over_seeds(run_load_sensitivity, None, [1, 2])


# ---------------------------------------------------------------------------
# Dataset-B high-FE-load guard
# ---------------------------------------------------------------------------
def _dataset_b_args(interval):
    scenario = Scenario(CONFIG)
    frontend = scenario.default_frontend("google-like",
                                         scenario.vantage_points[0])
    return scenario, frontend.node.name, dict(
        repeats=1, interval=interval, shards=3, processes=1)


def test_dataset_b_sharding_refuses_dense_schedules():
    # 14 VPs at interval 0.5 submit every ~36ms — far inside one
    # session's FE busy time, where sharding is not serial-equivalent.
    scenario, fe_name, kwargs = _dataset_b_args(interval=0.5)
    with pytest.raises(HighFrontEndLoadError,
                       match="allow_high_fe_load"):
        run_dataset_b_sharded(scenario, "google-like", fe_name,
                              KEYWORDS[0], **kwargs)


def test_dataset_b_guard_escape_hatch_warns_and_runs():
    scenario, fe_name, kwargs = _dataset_b_args(interval=0.5)
    with pytest.warns(UserWarning, match="serial-equivalent"):
        dataset = run_dataset_b_sharded(scenario, "google-like",
                                        fe_name, KEYWORDS[0],
                                        allow_high_fe_load=True,
                                        **kwargs)
    assert len(dataset.sessions) == 14


def test_dataset_b_guard_admits_sparse_schedules():
    # The documented low-load regime (the existing equivalence tests'
    # configs) must stay untouched: no error, no warning.
    import warnings

    scenario, fe_name, kwargs = _dataset_b_args(interval=8.0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        dataset = run_dataset_b_sharded(scenario, "google-like",
                                        fe_name, KEYWORDS[0], **kwargs)
    assert len(dataset.sessions) == 14
