"""Integration tests: HTTP over the simulated network."""

import pytest

from repro.http.client import HttpFetch, PersistentHttpClient, RequestHooks
from repro.http.message import HttpRequest, HttpResponse
from repro.http.server import HttpServer
from repro.net.address import Endpoint
from repro.sim import units

from .conftest import make_world

RTT = units.ms(40)


def simple_handler(body=b"response-body"):
    def handler(request, responder):
        responder.respond(HttpResponse(status=200, body=body))
    return handler


def test_single_fetch_roundtrip(two_hosts):
    world = two_hosts
    HttpServer(world.server, 80, simple_handler(b"hello"))
    fetch = HttpFetch(world.client, Endpoint("server", 80),
                      HttpRequest(path="/x"))
    world.run()
    assert fetch.complete
    assert fetch.response.body == b"hello"
    assert fetch.response.status == 200


def test_fetch_hooks_fire_in_order(two_hosts):
    world = two_hosts
    HttpServer(world.server, 80, simple_handler(b"abc"))
    events = []
    hooks = RequestHooks(
        on_head=lambda r: events.append("head"),
        on_body=lambda b: events.append("body"),
        on_complete=lambda r: events.append("end"))
    HttpFetch(world.client, Endpoint("server", 80),
              HttpRequest(path="/"), hooks)
    world.run()
    assert events == ["head", "body", "end"]


def test_streamed_response_two_parts_timing(two_hosts):
    """Server sends part 1 immediately and part 2 after a delay; the
    client must see the gap (this is the static/dynamic pattern)."""
    world = two_hosts
    sim = world.sim
    delay = 0.200

    def handler(request, responder):
        responder.send_head(200)
        responder.send_body(b"S" * 1000)
        def later():
            responder.send_body(b"D" * 1000)
            responder.finish()
        sim.schedule(delay, later)

    HttpServer(world.server, 80, handler)
    arrivals = []
    hooks = RequestHooks(on_body=lambda b: arrivals.append((sim.now, b[:1])))
    fetch = HttpFetch(world.client, Endpoint("server", 80),
                      HttpRequest(path="/q"), hooks)
    world.run()
    assert fetch.response.body == b"S" * 1000 + b"D" * 1000
    static_times = [t for t, tag in arrivals if tag == b"S"]
    dynamic_times = [t for t, tag in arrivals if tag == b"D"]
    assert dynamic_times[0] - static_times[-1] == pytest.approx(delay,
                                                                abs=0.02)


def test_persistent_client_sequential_requests(two_hosts):
    world = two_hosts
    served_paths = []

    def handler(request, responder):
        served_paths.append(request.path)
        responder.respond(HttpResponse(body=b"resp:" +
                                       request.path.encode()))

    HttpServer(world.server, 80, handler)
    client = PersistentHttpClient(world.client, Endpoint("server", 80))
    got = []
    for i in range(3):
        client.request(HttpRequest(path="/req%d" % i),
                       RequestHooks(on_complete=lambda r: got.append(r.body)))
    world.run()
    assert served_paths == ["/req0", "/req1", "/req2"]
    assert got == [b"resp:/req0", b"resp:/req1", b"resp:/req2"]
    assert client.requests_completed == 3
    assert not client.busy


def test_persistent_client_keeps_window_warm(two_hosts):
    """Second identical response must complete faster than the first
    because the congestion window carries over (split-TCP's core claim)."""
    world = two_hosts
    body = b"z" * 60_000

    def handler(request, responder):
        responder.respond(HttpResponse(body=body))

    HttpServer(world.server, 80, handler)
    client = PersistentHttpClient(world.client, Endpoint("server", 80))
    finish_times = []
    start_times = []

    def issue():
        start_times.append(world.sim.now)
        client.request(HttpRequest(path="/big"),
                       RequestHooks(on_complete=lambda r:
                                    finish_times.append(world.sim.now)))

    issue()
    world.sim.run()
    issue()
    world.sim.run()
    first = finish_times[0] - start_times[0]
    second = finish_times[1] - start_times[1]
    assert second < first - RTT  # at least one full RTT saved


def test_fetch_failure_hook_on_dead_server(two_hosts):
    world = two_hosts  # nothing listening on port 81
    failures = []
    fetch = HttpFetch(world.client, Endpoint("server", 81),
                      HttpRequest(path="/"),
                      RequestHooks(on_failure=failures.append))
    world.run(until=500.0)
    assert not fetch.complete
    assert failures


def test_server_counts_and_multiple_connections(two_hosts):
    world = two_hosts
    server = HttpServer(world.server, 80, simple_handler())
    fetches = [HttpFetch(world.client, Endpoint("server", 80),
                         HttpRequest(path="/%d" % i)) for i in range(4)]
    world.run()
    assert all(f.complete for f in fetches)
    assert server.requests_served == 4
    assert server.connections_accepted == 4


def test_streaming_under_loss_preserves_body():
    world = make_world(loss_rate=0.03, seed=9)

    def handler(request, responder):
        responder.send_head(200)
        responder.send_body(b"S" * 4000)
        world.sim.schedule(0.1, lambda: (responder.send_body(b"D" * 30_000),
                                         responder.finish()))

    HttpServer(world.server, 80, handler)
    fetch = HttpFetch(world.client, Endpoint("server", 80),
                      HttpRequest(path="/"))
    world.run(until=300.0)
    assert fetch.complete
    assert fetch.response.body == b"S" * 4000 + b"D" * 30_000
