"""Integration tests: full TCP transfers over the simulated network."""

import pytest

from repro.net.address import Endpoint
from repro.sim import units
from repro.tcp.config import TcpConfig
from repro.tcp.congestion import FixedWindowController
from repro.tcp.connection import ConnectionError_, State

from .conftest import make_world
from .helpers import CollectorApp, EchoServerApp, RespondApp, SinkApp, make_payload

RTT = units.ms(40)


def test_handshake_takes_one_rtt(two_hosts):
    world = two_hosts
    world.server.listen(80, SinkApp)
    app = CollectorApp()
    world.client.connect(Endpoint("server", 80), app)
    world.run()
    assert app.established_at == pytest.approx(RTT, rel=0.05)


def test_small_request_response_roundtrip(two_hosts):
    world = two_hosts
    server_app = RespondApp(b"pong", trigger_bytes=4)
    world.server.listen(80, lambda: server_app)
    client = CollectorApp(request=b"ping")
    world.client.connect(Endpoint("server", 80), client)
    world.run()
    assert bytes(server_app.received) == b"ping"
    assert bytes(client.received) == b"pong"
    # Request leaves at 1 RTT (with the handshake ACK); response arrives
    # one more RTT later.
    assert client.data_times[0] == pytest.approx(2 * RTT, rel=0.1)


def test_bulk_transfer_integrity_client_to_server(two_hosts):
    world = two_hosts
    sink = SinkApp()
    world.server.listen(80, lambda: sink)
    payload = make_payload(300_000)
    client = CollectorApp(request=payload, close_after_send=True)
    world.client.connect(Endpoint("server", 80), client)
    world.run()
    assert sink.byte_count == len(payload)
    assert sink.closed


def test_bulk_transfer_integrity_server_to_client(two_hosts):
    world = two_hosts
    payload = make_payload(200_000, tag=b"S")
    world.server.listen(80, lambda: RespondApp(payload, close_after=True))
    client = CollectorApp(request=b"GET")
    world.client.connect(Endpoint("server", 80), client)
    world.run()
    assert bytes(client.received) == payload
    assert client.closed_at is not None


def test_slow_start_needs_multiple_rtts():
    """A cold 60 kB response takes several window-ramp RTTs."""
    world = make_world(rtt=units.ms(100), bandwidth=units.gbps(1))
    payload = make_payload(60_000)
    world.server.listen(80, lambda: RespondApp(payload, close_after=True))
    client = CollectorApp(request=b"G")
    world.client.connect(Endpoint("server", 80), client)
    world.run()
    first = client.data_times[0]
    last = client.data_times[-1]
    # IW3 at MSS 1460: windows 3,6,12,24 segments -> ~3 extra RTTs after
    # the first data packet.
    assert last - first > 2.5 * units.ms(100)
    assert bytes(client.received) == payload


def test_large_initial_window_cuts_transfer_time():
    slow = make_world(rtt=units.ms(100), bandwidth=units.gbps(1))
    fast = make_world(rtt=units.ms(100), bandwidth=units.gbps(1),
                      server_config=TcpConfig(initial_window_segments=40))
    payload = make_payload(50_000)
    times = {}
    for name, world in (("slow", slow), ("fast", fast)):
        world.server.listen(80, lambda: RespondApp(payload, close_after=True))
        client = CollectorApp(request=b"G")
        world.client.connect(Endpoint("server", 80), client)
        world.run()
        assert bytes(client.received) == payload
        times[name] = client.data_times[-1]
    assert times["fast"] < times["slow"] - units.ms(100)


def test_transfer_under_loss_is_reliable():
    world = make_world(loss_rate=0.02, seed=11)
    payload = make_payload(150_000, tag=b"L")
    world.server.listen(80, lambda: RespondApp(payload, close_after=True))
    client = CollectorApp(request=b"G")
    conn = world.client.connect(Endpoint("server", 80), client)
    world.run(until=300.0)
    assert bytes(client.received) == payload


def test_retransmission_counters_increment_under_loss():
    world = make_world(loss_rate=0.05, seed=5)
    sink = SinkApp()
    world.server.listen(80, lambda: sink)
    payload = make_payload(200_000)
    client = CollectorApp(request=payload, close_after_send=True)
    conn = world.client.connect(Endpoint("server", 80), client)
    world.run(until=300.0)
    assert sink.byte_count == len(payload)
    assert conn.stats.retransmissions > 0


def test_echo_round_trip(two_hosts):
    world = two_hosts
    world.server.listen(7, EchoServerApp)
    message = make_payload(5000, tag=b"E")
    client = CollectorApp(request=message, close_after_send=True)
    world.client.connect(Endpoint("server", 7), client)
    world.run()
    assert bytes(client.received) == message


def test_persistent_connection_window_grows(two_hosts):
    """cwnd must survive across request/response exchanges (no idle reset)."""
    world = two_hosts
    server_apps = []

    def factory():
        app = EchoServerApp()
        server_apps.append(app)
        return app

    world.server.listen(80, factory)
    client = CollectorApp()
    conn = world.client.connect(Endpoint("server", 80), client)
    world.sim.run()
    cwnd_start = conn.cc.cwnd
    # Three sequential exchanges on the same connection.
    for i in range(3):
        conn.send(make_payload(20_000, tag=b"%d" % i))
        world.sim.run()
    assert conn.cc.cwnd > cwnd_start
    assert len(bytes(client.received)) == 60_000


def test_clean_close_reaches_closed_state(two_hosts):
    world = two_hosts
    world.server.listen(80, EchoServerApp)
    client = CollectorApp(request=b"hi", close_after_send=True)
    conn = world.client.connect(Endpoint("server", 80), client)
    world.run()
    assert client.closed_at is not None
    assert conn.state in (State.TIME_WAIT, State.CLOSED)
    # After TIME_WAIT expiry the flow is forgotten.
    world.run(until=200.0)
    assert conn.flow not in world.client.connections


def test_send_after_close_raises(two_hosts):
    world = two_hosts
    world.server.listen(80, EchoServerApp)
    client = CollectorApp(request=b"x")
    conn = world.client.connect(Endpoint("server", 80), client)
    world.run()
    conn.close()
    world.run()
    with pytest.raises(ConnectionError_):
        conn.send(b"more")


def test_connect_to_dead_port_aborts_after_retries(two_hosts):
    world = two_hosts
    client = CollectorApp(request=b"x")
    conn = world.client.connect(Endpoint("server", 4444), client)
    world.run(until=400.0)
    assert client.established_at is None
    assert client.errors
    assert conn.state == State.CLOSED


def test_rtt_estimate_close_to_actual_rtt(two_hosts):
    world = two_hosts
    world.server.listen(80, EchoServerApp)
    client = CollectorApp(request=make_payload(30_000), close_after_send=True)
    conn = world.client.connect(Endpoint("server", 80), client)
    world.run()
    assert conn.srtt == pytest.approx(RTT, rel=0.25)


def test_delayed_ack_defers_pure_ack():
    """With delayed ACK on and a silent app, the pure ACK waits ~40 ms."""
    world = make_world(rtt=units.ms(10),
                       server_config=TcpConfig(delayed_ack=True))
    sink = SinkApp()
    world.server.listen(80, lambda: sink)
    client = CollectorApp(request=b"q")  # 1 segment, no response
    conn = world.client.connect(Endpoint("server", 80), client)
    world.run(until=5.0)
    assert sink.byte_count == 1
    # The client's data was acked eventually (delack timer), so una
    # advanced despite no response data.
    assert conn.send_buffer.all_acked


def test_fixed_window_controller_transfers_in_fewer_rtts():
    world = make_world(rtt=units.ms(100), bandwidth=units.gbps(1))
    payload = make_payload(80_000)
    # Server side uses a pinned large window via listener config override.
    received = []

    class BigWindowResponder(RespondApp):
        def __init__(self):
            super().__init__(payload, close_after=True)

    world.server.listen(80, BigWindowResponder)
    # Patch: passive connections take listener config; emulate by giving
    # the whole server stack a fixed-window-equivalent config.
    world2 = make_world(rtt=units.ms(100), bandwidth=units.gbps(1),
                        server_config=TcpConfig(initial_window_segments=60))
    world2.server.listen(80, BigWindowResponder)
    durations = []
    for w in (world, world2):
        client = CollectorApp(request=b"G")
        w.client.connect(Endpoint("server", 80), client)
        w.run()
        assert bytes(client.received) == payload
        durations.append(client.data_times[-1] - client.data_times[0])
    assert durations[1] < durations[0]


def test_two_parallel_connections_are_isolated(two_hosts):
    world = two_hosts
    world.server.listen(80, EchoServerApp)
    a = CollectorApp(request=make_payload(10_000, tag=b"A"),
                     close_after_send=True)
    b = CollectorApp(request=make_payload(10_000, tag=b"B"),
                     close_after_send=True)
    world.client.connect(Endpoint("server", 80), a)
    world.client.connect(Endpoint("server", 80), b)
    world.run()
    assert bytes(a.received) == make_payload(10_000, tag=b"A")
    assert bytes(b.received) == make_payload(10_000, tag=b"B")
