"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.net.topology import Topology
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.tcp.config import TcpConfig
from repro.tcp.host import TcpHost


class TwoHostWorld:
    """A minimal client/server network for transport-layer tests."""

    def __init__(self, *, rtt: float = units.ms(40),
                 bandwidth: float = units.mbps(100),
                 loss_rate: float = 0.0,
                 seed: int = 0,
                 client_config: TcpConfig = None,
                 server_config: TcpConfig = None):
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.topology = Topology(self.sim, self.streams)
        self.topology.add_node("client")
        self.topology.add_node("server")
        self.topology.connect("client", "server", delay=rtt / 2.0,
                              bandwidth=bandwidth, loss_rate=loss_rate)
        self.topology.build_routes()
        self.client = TcpHost(self.sim, self.topology.node("client"),
                              client_config or TcpConfig(),
                              self.streams)
        self.server = TcpHost(self.sim, self.topology.node("server"),
                              server_config or TcpConfig(),
                              self.streams)

    def run(self, until: float = 120.0) -> None:
        self.sim.run(until=until)


@pytest.fixture
def two_hosts():
    """Default lossless 40 ms-RTT client/server world."""
    return TwoHostWorld()


def make_world(**kwargs) -> TwoHostWorld:
    """Factory for tests needing custom parameters."""
    return TwoHostWorld(**kwargs)
