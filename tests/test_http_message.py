"""Unit tests for HTTP message framing and incremental parsers."""

import pytest

from repro.http.message import (
    HttpError,
    HttpRequest,
    HttpResponse,
    RequestParser,
    ResponseParser,
    build_query_path,
    encode_chunk,
    encode_last_chunk,
)


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------
def test_request_encode_roundtrip():
    request = HttpRequest(method="GET", path="/search?q=abc",
                          headers={"Host": "bing.example"})
    wire = request.encode()
    assert wire.startswith(b"GET /search?q=abc HTTP/1.1\r\n")
    assert b"Host: bing.example\r\n" in wire
    assert wire.endswith(b"\r\n\r\n")


def test_request_with_body_gets_content_length():
    request = HttpRequest(method="POST", path="/", body=b"hello")
    wire = request.encode()
    assert b"Content-Length: 5" in wire
    assert wire.endswith(b"hello")


def test_header_injection_rejected():
    request = HttpRequest(headers={"X-Bad": "v\r\nInjected: yes"})
    with pytest.raises(HttpError):
        request.encode()


def test_response_head_and_full_encode():
    response = HttpResponse(status=200, headers={"X-A": "1"}, body=b"ok")
    head = response.encode_head()
    assert head.startswith(b"HTTP/1.1 200 OK\r\n")
    full = response.encode()
    assert b"Content-Length: 2" in full
    assert full.endswith(b"ok")
    assert response.ok


def test_chunk_encoding():
    assert encode_chunk(b"abc") == b"3\r\nabc\r\n"
    assert encode_chunk(b"") == b"0\r\n\r\n"
    assert encode_last_chunk() == b"0\r\n\r\n"


def test_build_query_path_escaping():
    path = build_query_path("/search", {"q": "computer science dept"})
    assert path == "/search?q=computer+science+dept"
    assert build_query_path("/x", {}) == "/x"
    path = build_query_path("/s", {"q": "a&b=c"})
    assert "&b=c" not in path.split("?")[1].replace("%26b%3Dc", "")


def test_query_parse_roundtrip():
    path = build_query_path("/search", {"q": "mobile cloud computing",
                                        "page": "2"})
    request = HttpRequest(path=path)
    assert request.query == {"q": "mobile cloud computing", "page": "2"}


def test_query_empty_when_no_querystring():
    assert HttpRequest(path="/plain").query == {}


# ---------------------------------------------------------------------------
# request parser
# ---------------------------------------------------------------------------
def test_request_parser_single_message():
    parser = RequestParser()
    wire = HttpRequest(path="/a", headers={"Host": "h"}).encode()
    (request,) = parser.feed(wire)
    assert request.path == "/a"
    assert request.headers["Host"] == "h"


def test_request_parser_byte_at_a_time():
    parser = RequestParser()
    wire = HttpRequest(method="POST", path="/b", body=b"xyz").encode()
    out = []
    for i in range(len(wire)):
        out.extend(parser.feed(wire[i:i + 1]))
    assert len(out) == 1
    assert out[0].body == b"xyz"


def test_request_parser_pipelined_messages():
    parser = RequestParser()
    wire = (HttpRequest(path="/1").encode()
            + HttpRequest(path="/2").encode()
            + HttpRequest(path="/3").encode())
    requests = parser.feed(wire)
    assert [r.path for r in requests] == ["/1", "/2", "/3"]


def test_request_parser_malformed_line_raises():
    parser = RequestParser()
    with pytest.raises(HttpError):
        parser.feed(b"NONSENSE\r\n\r\n")


# ---------------------------------------------------------------------------
# response parser
# ---------------------------------------------------------------------------
def chunked_response_wire(chunks, status=200, headers=None):
    response = HttpResponse(status=status,
                            headers=dict(headers or {},
                                         **{"Transfer-Encoding": "chunked"}))
    wire = response.encode_head()
    for chunk in chunks:
        wire += encode_chunk(chunk)
    wire += encode_last_chunk()
    return wire


def test_response_parser_content_length():
    parser = ResponseParser()
    wire = HttpResponse(status=200, body=b"hello world").encode()
    events = parser.feed(wire)
    kinds = [k for k, _ in events]
    assert kinds == ["head", "body", "end"]
    assert events[-1][1].body == b"hello world"


def test_response_parser_chunked_stream_events():
    parser = ResponseParser()
    wire = chunked_response_wire([b"static-part", b"dynamic-part"])
    events = parser.feed(wire)
    bodies = [p for k, p in events if k == "body"]
    assert bodies == [b"static-part", b"dynamic-part"]
    assert events[-1][0] == "end"
    assert events[-1][1].body == b"static-partdynamic-part"


def test_response_parser_fragmented_arbitrarily():
    wire = chunked_response_wire([b"a" * 100, b"b" * 50, b"c" * 7])
    for step in (1, 3, 7, 11):
        parser = ResponseParser()
        collected = bytearray()
        ends = []
        for i in range(0, len(wire), step):
            for kind, payload in parser.feed(wire[i:i + step]):
                if kind == "body":
                    collected.extend(payload)
                elif kind == "end":
                    ends.append(payload)
        assert bytes(collected) == b"a" * 100 + b"b" * 50 + b"c" * 7
        assert len(ends) == 1


def test_response_parser_sequential_responses():
    parser = ResponseParser()
    wire = (HttpResponse(body=b"first").encode()
            + chunked_response_wire([b"sec", b"ond"]))
    events = parser.feed(wire)
    ends = [p for k, p in events if k == "end"]
    assert [e.body for e in ends] == [b"first", b"second"]


def test_response_parser_zero_length_body():
    parser = ResponseParser()
    events = parser.feed(HttpResponse(status=204).encode())
    assert [k for k, _ in events] == ["head", "end"]
    assert events[-1][1].body == b""


def test_response_parser_bad_chunk_size():
    parser = ResponseParser()
    head = HttpResponse(headers={"Transfer-Encoding": "chunked"}).encode_head()
    with pytest.raises(HttpError):
        parser.feed(head + b"zz\r\n")


def test_response_parser_missing_chunk_crlf():
    parser = ResponseParser()
    head = HttpResponse(headers={"Transfer-Encoding": "chunked"}).encode_head()
    with pytest.raises(HttpError):
        parser.feed(head + b"3\r\nabcXX")
