"""Tests for the open-loop workload generators (repro.workload)."""

import random

import pytest

from repro.workload import (
    DiurnalArrivals,
    FlashCrowdArrivals,
    OpenLoopWorkload,
    PoissonArrivals,
    TraceFormatError,
    TraceWorkload,
    WorkloadSpec,
    ZipfPopularity,
    make_arrivals,
    read_events,
    write_events,
    zipf_universe,
)

VPS = ["vp-%03d" % index for index in range(9)]


def _spec(**overrides):
    base = dict(seed=13, users=120, duration=300.0, session_rate=0.8,
                keyword_count=64, services=("google-like",))
    base.update(overrides)
    return WorkloadSpec(**base)


# ---------------------------------------------------------------------------
# popularity
# ---------------------------------------------------------------------------
def test_zipf_universe_is_ranked_and_deterministic():
    first = zipf_universe(7, 32)
    second = zipf_universe(7, 32)
    assert first == second
    popularity = [keyword.popularity for keyword in first]
    assert popularity == sorted(popularity, reverse=True)


def test_zipf_probabilities_sum_to_one_and_decay():
    popularity = ZipfPopularity(zipf_universe(7, 32), alpha=1.0)
    probabilities = [popularity.probability(rank)
                     for rank in range(1, 33)]
    assert sum(probabilities) == pytest.approx(1.0)
    assert probabilities == sorted(probabilities, reverse=True)
    assert probabilities[0] / probabilities[15] == pytest.approx(16.0)


def test_zipf_skew_concentrates_head_mass():
    universe = zipf_universe(7, 64)
    rng_flat, rng_skewed = random.Random(1), random.Random(1)
    flat = ZipfPopularity(universe, alpha=0.2)
    skewed = ZipfPopularity(universe, alpha=1.4)
    head = universe[0]
    flat_hits = sum(flat.sample(rng_flat) == head for _ in range(2000))
    skewed_hits = sum(skewed.sample(rng_skewed) == head
                      for _ in range(2000))
    assert skewed_hits > flat_hits * 2


# ---------------------------------------------------------------------------
# arrivals
# ---------------------------------------------------------------------------
def test_arrival_kinds_construct_and_stay_in_duration():
    for kind in ("poisson", "diurnal", "flash"):
        process = make_arrivals(kind, 2.0)
        times = list(process.times(random.Random(3), 50.0))
        assert times == sorted(times)
        assert all(0.0 <= time < 50.0 for time in times)
        assert times  # rate 2/s over 50s: silence would be a bug


def test_poisson_rate_is_respected():
    times = list(PoissonArrivals(5.0).times(random.Random(11), 400.0))
    assert len(times) == pytest.approx(2000, rel=0.1)


def test_flash_crowd_concentrates_arrivals():
    process = FlashCrowdArrivals(1.0, at=100.0, burst=50.0,
                                 multiplier=10.0)
    times = list(process.times(random.Random(5), 400.0))
    in_burst = sum(100.0 <= time < 150.0 for time in times)
    # The 50s burst window at 10x rate should hold the majority of a
    # 400s run's arrivals (expected 500 of ~850).
    assert in_burst > len(times) * 0.4


def test_diurnal_intensity_oscillates():
    process = DiurnalArrivals(1.0, amplitude=0.5, period=200.0)
    assert process.intensity(50.0) == pytest.approx(1.5)
    assert process.intensity(150.0) == pytest.approx(0.5)
    assert process.peak() == pytest.approx(1.5)


def test_zero_rate_yields_no_arrivals():
    assert list(PoissonArrivals(0.0).times(random.Random(1), 10.0)) == []


# ---------------------------------------------------------------------------
# generator determinism
# ---------------------------------------------------------------------------
def test_stream_is_deterministic_and_ordered():
    first = list(OpenLoopWorkload(_spec(), VPS).events())
    second = list(OpenLoopWorkload(_spec(), VPS).events())
    assert first == second
    keys = [event.sort_key() for event in first]
    assert keys == sorted(keys)
    assert all(0.0 <= event.time < 300.0 for event in first)


def test_shard_filters_partition_the_serial_stream():
    serial = list(OpenLoopWorkload(_spec(), VPS).events())
    for shard_count in (2, 3, 4):
        parts = [VPS[index::shard_count] for index in range(shard_count)]
        shard_streams = [
            list(OpenLoopWorkload(_spec(), VPS).events_for(part))
            for part in parts]
        # Disjoint, exhaustive, and each in serial order.
        assert sum(len(stream) for stream in shard_streams) == len(serial)
        merged = sorted((event for stream in shard_streams
                         for event in stream),
                        key=lambda event: event.sort_key())
        assert merged == serial


def test_different_seeds_differ():
    first = list(OpenLoopWorkload(_spec(seed=1), VPS).events())
    second = list(OpenLoopWorkload(_spec(seed=2), VPS).events())
    assert first != second


def test_sessions_stay_on_one_vp_and_one_service():
    spec = _spec(services=("google-like", "bing-akamai"),
                 queries_per_session=4.0)
    by_session = {}
    for event in OpenLoopWorkload(spec, VPS).events():
        by_session.setdefault(event.session_id, []).append(event)
    multi = 0
    for events in by_session.values():
        assert len({event.vp_name for event in events}) == 1
        assert len({event.user for event in events}) == 1
        assert len({event.service for event in events}) == 1
        indices = [event.query_index for event in events]
        assert sorted(indices) == list(range(len(events)))
        multi += len(events) > 1
    assert multi > 0  # think-time tails actually happen


def test_max_events_caps_the_global_stream():
    spec = _spec(max_events=25)
    assert len(list(OpenLoopWorkload(spec, VPS).events())) == 25
    shards = [list(OpenLoopWorkload(spec, VPS).events_for(VPS[0::2])),
              list(OpenLoopWorkload(spec, VPS).events_for(VPS[1::2]))]
    # The cap applies before filtering: shard streams partition the
    # capped serial stream, never re-extend it.
    assert sum(len(stream) for stream in shards) == 25


def test_spec_validation():
    with pytest.raises(ValueError):
        _spec(users=0)
    with pytest.raises(ValueError):
        _spec(arrivals="bursty")
    with pytest.raises(ValueError):
        _spec(queries_per_session=0.5)
    with pytest.raises(ValueError):
        _spec(services=())
    with pytest.raises(ValueError):
        OpenLoopWorkload(_spec(), [])


# ---------------------------------------------------------------------------
# JSONL traces
# ---------------------------------------------------------------------------
def test_trace_round_trip_is_exact(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    workload = OpenLoopWorkload(_spec(max_events=40), VPS)
    original = list(workload.events())
    assert write_events(path, original) == 40
    replayed = list(read_events(path))
    assert replayed == original  # bit-exact times included

    trace = TraceWorkload(path)
    assert trace.services == ("google-like",)
    assert list(trace.events()) == original
    subset = [event for event in original if event.vp_name == VPS[0]]
    assert list(trace.events_for([VPS[0]])) == subset


def test_trace_rejects_malformed_lines(tmp_path):
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w") as handle:
        handle.write("not json\n")
    with pytest.raises(TraceFormatError):
        list(read_events(path))
    with open(path, "w") as handle:
        handle.write('{"v": 99}\n')
    with pytest.raises(TraceFormatError):
        list(read_events(path))
