"""Tests for the tiered campaign executor (``repro.sim.analytic``).

The load-bearing property: the packet simulator stays the referee.
The analytic tier may serve the bulk of a campaign from the closed-form
session model, but every seeded validation sample must agree with the
packet engine to within the gate tolerance, tier decisions must be
bit-identical between sharded and serial runs, and a stratum whose
prediction diverges must be demoted back to packet-level simulation.
"""

import pytest

from repro.content.keywords import Keyword
from repro.measure import driver as driver_module
from repro.measure.driver import run_dataset_a, run_dataset_b
from repro.parallel import run_dataset_a_sharded
from repro.sim.analytic import (
    DEFAULT_TOLERANCE,
    DivergenceGate,
    TierStats,
    tier_mode,
)
from repro.sim.randomness import derive_seed
from repro.tcp.config import TcpConfig
from repro.testbed.scenario import Scenario, ScenarioConfig

#: Deterministic keyed services — the only mode where the analytic
#: tier admits sessions (mirrors the replay cache's requirements).
DET_CONFIG = ScenarioConfig(seed=7, vantage_count=3,
                            keyed_service_draws=True,
                            deterministic_services=True)

KEYWORD = Keyword(text="alpha query", popularity=0.6, complexity=0.3)


def session_fingerprint(session):
    """Every observable of one session, for exact comparison."""
    return (
        session.query_id, session.service, session.vp_name,
        session.fe_name, session.local_port, session.started_at,
        session.completed_at, session.failed, session.response_size,
        session.path_rtt,
        tuple((e.time, e.direction, e.src, e.dst, e.sport, e.dport,
               e.wire_size, e.payload_len, e.seq, e.ack, e.syn, e.fin,
               e.ack_flag, e.retransmit)
              for e in session.events),
    )


def run_a(tier, config=DET_CONFIG, repeats=12, interval=3.0):
    scenario = Scenario(config)
    dataset = run_dataset_a(scenario, [KEYWORD], repeats=repeats,
                            interval=interval,
                            services=[Scenario.GOOGLE], tier=tier)
    return scenario, dataset


# ---------------------------------------------------------------------------
# divergence gate unit behavior
# ---------------------------------------------------------------------------
def test_gate_tolerance_boundary_exactly_met_passes():
    gate = DivergenceGate(seed=3)
    key = ("google", "fe", "vp")
    # Exactly at tolerance: not a divergence, no demotion.
    assert gate.observe(key, {"te": DEFAULT_TOLERANCE}) == (False, False)
    assert not gate.demoted(key)
    # Strictly beyond: diverged and demoted, exactly once.
    beyond = DEFAULT_TOLERANCE * (1.0 + 1e-9)
    assert gate.observe(key, {"t3": beyond}) == (True, True)
    assert gate.demoted(key)
    # Already-demoted strata report divergence but never re-demote.
    assert gate.observe(key, {"t3": beyond}) == (True, False)


def test_gate_worst_landmark_decides():
    gate = DivergenceGate(seed=3, tolerance=1e-6)
    key = ("google", "fe", "vp")
    # All landmarks inside tolerance: passes.
    assert gate.observe(key, {"tb": 1e-9, "te": 1e-6}) == (False, False)
    # One landmark beyond suffices, regardless of the others.
    assert gate.observe(key, {"tb": 0.0, "t4": 2e-6}) == (True, True)


def test_gate_first_submission_always_validates():
    gate = DivergenceGate(seed=11, validate_every=4)
    assert gate.decide(("g", "fe-a", "vp-a")) == "validate"
    assert gate.decide(("g", "fe-b", "vp-b")) == "validate"


def test_gate_cadence_is_seeded_per_stratum():
    seed, every = 11, 4
    key = ("google", "fe-chicago", "vp-0")
    # Intentionally the gate's own namespace: the test re-derives the
    # seeded cadence phase to predict decide()'s schedule exactly.
    phase = derive_seed(seed, "tier/%s/%s/%s" % key) % every  # simlint: ignore[RNG002]
    gate = DivergenceGate(seed=seed, validate_every=every)
    decisions = [gate.decide(key) for _ in range(20)]
    for index, decision in enumerate(decisions):
        admitted = index + 1
        expected = "validate" if (admitted == 1
                                  or admitted % every == phase) \
            else "analytic"
        assert decision == expected


def test_gate_demotion_routes_all_later_submissions_to_packet():
    gate = DivergenceGate(seed=3, tolerance=0.0, validate_every=2)
    key = ("g", "fe", "vp")
    assert gate.decide(key) == "validate"
    gate.observe(key, {"te": 1e-12})
    assert gate.demoted(key)
    assert all(gate.decide(key) == "demoted" for _ in range(5))


def test_gate_validate_every_none_is_pure_analytic():
    gate = DivergenceGate(seed=3, validate_every=None)
    key = ("g", "fe", "vp")
    assert all(gate.decide(key) == "analytic" for _ in range(20))


def test_gate_rejects_bad_parameters():
    with pytest.raises(ValueError):
        DivergenceGate(seed=3, tolerance=-1e-9)
    with pytest.raises(ValueError):
        DivergenceGate(seed=3, validate_every=0)


# ---------------------------------------------------------------------------
# tier policy resolution
# ---------------------------------------------------------------------------
def test_tier_mode_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_TIER", "analytic")
    assert tier_mode("packet") == "packet"
    assert tier_mode() == "analytic"


def test_tier_mode_defaults_to_packet(monkeypatch):
    monkeypatch.delenv("REPRO_TIER", raising=False)
    assert tier_mode() == "packet"
    monkeypatch.setenv("REPRO_TIER", "")
    assert tier_mode() == "packet"


def test_tier_mode_normalizes_and_rejects(monkeypatch):
    monkeypatch.delenv("REPRO_TIER", raising=False)
    assert tier_mode("  AUTO ") == "auto"
    with pytest.raises(ValueError):
        tier_mode("fluid")
    monkeypatch.setenv("REPRO_TIER", "bogus")
    with pytest.raises(ValueError):
        tier_mode()


# ---------------------------------------------------------------------------
# campaign-level agreement: analytic vs packet ground truth
# ---------------------------------------------------------------------------
def test_analytic_campaign_matches_packet_within_tolerance():
    _, packet = run_a("packet")
    _, analytic = run_a("analytic")

    assert analytic.tier is not None and analytic.tier.analytic > 0
    assert analytic.tier.validations == 0  # pure analytic: no referee
    assert len(packet.sessions) == len(analytic.sessions) > 0
    for ours, theirs in zip(packet.sessions, analytic.sessions):
        # Identity, admission, and draw-derived observables are exact.
        assert ours.query_id == theirs.query_id
        assert ours.service == theirs.service
        assert ours.vp_name == theirs.vp_name
        assert ours.fe_name == theirs.fe_name
        assert ours.local_port == theirs.local_port
        assert ours.started_at == theirs.started_at
        assert ours.failed is None and theirs.failed is None
        assert ours.response_size == theirs.response_size
        assert len(ours.events) == len(theirs.events)
        # Modeled completion time agrees to within the gate tolerance.
        assert abs(ours.completed_at - theirs.completed_at) \
            <= DEFAULT_TOLERANCE


def test_analytic_campaign_server_logs_match_packet():
    scenario_p, _ = run_a("packet")
    scenario_a, _ = run_a("analytic")
    packet = scenario_p.service(Scenario.GOOGLE)
    analytic = scenario_a.service(Scenario.GOOGLE)

    p_fetches = packet.merged_fetch_log()
    a_fetches = analytic.merged_fetch_log()
    assert set(p_fetches) == set(a_fetches) and p_fetches
    for key, ours in p_fetches.items():
        theirs = a_fetches[key]
        assert ours.query_id == theirs.query_id
        assert ours.response_size == theirs.response_size
        assert abs(ours.forwarded_at - theirs.forwarded_at) \
            <= DEFAULT_TOLERANCE
        assert abs(ours.completed_at - theirs.completed_at) \
            <= DEFAULT_TOLERANCE

    p_queries = packet.merged_query_log()
    a_queries = analytic.merged_query_log()
    assert set(p_queries) == set(a_queries) and p_queries
    for key, ours in p_queries.items():
        theirs = a_queries[key]
        assert ours.tproc == theirs.tproc
        assert ours.response_size == theirs.response_size
        assert abs(ours.arrival_time - theirs.arrival_time) \
            <= DEFAULT_TOLERANCE


def test_auto_tier_validations_never_diverge():
    _, dataset = run_a("auto", repeats=20)
    stats = dataset.tier
    assert stats is not None
    assert stats.analytic > 0
    assert stats.validations > 0
    assert stats.divergences == 0
    assert stats.demotions == 0
    assert stats.submissions == len(dataset.sessions)
    assert all(s.complete for s in dataset.sessions)


def test_dataset_b_auto_tier_runs_clean():
    scenario = Scenario(DET_CONFIG)
    frontend = scenario.service(Scenario.GOOGLE).frontends[0]
    dataset = run_dataset_b(scenario, Scenario.GOOGLE, frontend,
                            KEYWORD, repeats=12, interval=8.0,
                            tier="auto")
    stats = dataset.tier
    assert stats is not None
    assert stats.analytic > 0
    assert stats.divergences == 0 and stats.demotions == 0
    assert all(s.complete for s in dataset.sessions)


def test_packet_tier_records_no_tier_stats():
    _, dataset = run_a("packet")
    assert dataset.tier is None


# ---------------------------------------------------------------------------
# demotion: a diverging stratum falls back to packet simulation
# ---------------------------------------------------------------------------
def test_divergence_demotes_stratum_mid_campaign(monkeypatch):
    # Force every validation comparison to report a divergence far
    # beyond tolerance: each stratum's first (always-validated)
    # admissible session must demote it, and every later submission in
    # the stratum must bypass as "gate-demoted" — packet-simulated, so
    # the campaign's observables stay bit-identical to a pure packet
    # run.
    monkeypatch.setattr(
        "repro.sim.analytic.manager.landmark_divergences",
        lambda session, prediction, tcp_host: {"te": 1.0})
    _, packet = run_a("packet")
    _, demoted = run_a("auto")

    stats = demoted.tier
    assert stats.analytic == 0
    assert stats.validations > 0
    assert stats.divergences >= stats.demotions >= 1
    assert stats.bypasses.get("gate-demoted", 0) > 0
    assert ([session_fingerprint(s) for s in packet.sessions]
            == [session_fingerprint(s) for s in demoted.sessions])


# ---------------------------------------------------------------------------
# determinism: sharded tier decisions equal serial ones
# ---------------------------------------------------------------------------
def test_sharded_auto_tier_bit_identical_to_serial():
    config = ScenarioConfig(seed=7, vantage_count=6,
                            keyed_service_draws=True,
                            deterministic_services=True)
    serial = run_dataset_a(Scenario(config), [KEYWORD], repeats=10,
                           interval=3.0, services=[Scenario.GOOGLE],
                           tier="auto")
    sharded = run_dataset_a_sharded(Scenario(config), [KEYWORD],
                                    repeats=10, interval=3.0,
                                    services=[Scenario.GOOGLE],
                                    shards=2, processes=2, tier="auto")

    assert serial.tier is not None and sharded.tier is not None
    # Identical tier decisions, not merely identical outcomes.
    assert serial.tier == sharded.tier
    assert serial.tier.analytic > 0
    assert serial.tier.divergences == 0
    assert ([session_fingerprint(s) for s in serial.sessions]
            == [session_fingerprint(s) for s in sharded.sessions])


def test_sharded_auto_tier_invariant_across_shard_counts():
    config = ScenarioConfig(seed=7, vantage_count=6,
                            keyed_service_draws=True,
                            deterministic_services=True)

    def run(shards, processes):
        return run_dataset_a_sharded(
            Scenario(config), [KEYWORD], repeats=6, interval=3.0,
            services=[Scenario.GOOGLE], shards=shards,
            processes=processes, tier="auto")

    two = run(2, 2)
    three = run(3, 1)
    assert two.tier == three.tier
    assert ([session_fingerprint(s) for s in two.sessions]
            == [session_fingerprint(s) for s in three.sessions])


# ---------------------------------------------------------------------------
# tier stats merge
# ---------------------------------------------------------------------------
def test_tier_stats_sum_merges_counters():
    a = TierStats(analytic=5, simulated=2, validations=1,
                  divergences=1, demotions=1, bypasses={"fe-busy": 1})
    b = TierStats(analytic=3, simulated=4, validations=2,
                  bypasses={"fe-busy": 2, "time-origin": 1})
    total = sum([a, b])
    assert total == TierStats(analytic=8, simulated=6, validations=3,
                              divergences=1, demotions=1,
                              bypasses={"fe-busy": 3, "time-origin": 1})
    assert total.bypassed == 4
    assert total.submissions == 14


# ---------------------------------------------------------------------------
# observability: tier counters and divergence histograms
# ---------------------------------------------------------------------------
def test_auto_tier_exports_obs_counters_and_histograms():
    from repro import obs

    obs.enable()
    try:
        obs.reset()
        _, dataset = run_a("auto", repeats=20)
    finally:
        obs.disable()
        obs.reset()

    counters = dataset.obs_metrics.counters
    stats = dataset.tier
    assert counters["tier.analytic_sessions"] == stats.analytic
    assert counters["tier.simulated_sessions"] == stats.simulated
    assert counters["tier.validations"] == stats.validations
    assert "tier.divergences" not in counters  # none occurred
    assert counters["tier.bypass.time-origin"] \
        == stats.bypasses["time-origin"]
    # One divergence histogram per landmark, fed once per validation.
    for name in ("tb", "t1", "t2", "t3", "t4", "t5", "te"):
        hist = dataset.obs_metrics.histograms["tier.divergence.%s" % name]
        assert hist["count"] == stats.validations


# ---------------------------------------------------------------------------
# widened replay admission: cubic profiles (satellite of the tier PR)
# ---------------------------------------------------------------------------
CUBIC_CONFIG = ScenarioConfig(seed=7, vantage_count=3,
                              keyed_service_draws=True,
                              deterministic_services=True,
                              client_tcp=TcpConfig(congestion="cubic"))


def _replay_run(config):
    scenario = Scenario(config)
    dataset = run_dataset_a(scenario, [KEYWORD], repeats=12,
                            interval=3.0, services=[Scenario.GOOGLE],
                            replay_cache=True)
    return dataset


def test_replay_cubic_admission():
    # Cubic with the default (effectively infinite) initial ssthresh
    # never leaves slow start on an admitted loss-free path, where its
    # byte-counting ramp is identical to Reno's: the replay cache must
    # admit it, and the sessions must be bit-equal to the Reno run's.
    reno = _replay_run(DET_CONFIG)
    cubic = _replay_run(CUBIC_CONFIG)

    assert cubic.replay is not None and cubic.replay.hits > 0
    assert "congestion-model" not in cubic.replay.bypasses
    assert ([session_fingerprint(s) for s in reno.sessions]
            == [session_fingerprint(s) for s in cubic.sessions])


def test_replay_cubic_finite_ssthresh_still_bypasses():
    # A cubic profile that can actually exit slow start is governed by
    # wall-clock time since loss — not time-shiftable, so every
    # submission must bypass the cache.
    config = ScenarioConfig(
        seed=7, vantage_count=3, keyed_service_draws=True,
        deterministic_services=True,
        client_tcp=TcpConfig(congestion="cubic",
                             initial_ssthresh_bytes=64_000))
    dataset = _replay_run(config)
    assert dataset.replay.hits == 0 and dataset.replay.misses == 0
    assert dataset.replay.bypasses == {
        "congestion-model": len(dataset.sessions)}


def test_analytic_tier_admits_cubic_infinite_ssthresh():
    _, dataset = run_a("analytic", config=CUBIC_CONFIG)
    assert dataset.tier is not None and dataset.tier.analytic > 0
    assert "congestion-model" not in dataset.tier.bypasses
    assert all(s.complete for s in dataset.sessions)
