"""Calibration guards: the service profiles must keep the relationships
the paper's figures depend on.  If a future tuning breaks one of these,
the figure benchmarks will drift — these tests fail first and point at
the responsible knob."""

import pytest

from repro.services.deployment import (
    bing_akamai_profile,
    google_like_profile,
)
from repro.sim import units
from repro.testbed import sites


@pytest.fixture(scope="module")
def google():
    return google_like_profile()


@pytest.fixture(scope="module")
def bing():
    return bing_akamai_profile()


def test_backend_processing_separation(google, bing):
    """Figure 9's intercepts: bing's Tproc must dwarf google's."""
    from repro.content.keywords import Keyword

    keyword = Keyword(text="calibration", popularity=0.5, complexity=0.45)
    google_mean = google.processing.mean_for(keyword)
    bing_mean = bing.processing.mean_for(keyword)
    # Paper: ~34 ms vs ~260 ms (ratio ~7.6).
    assert 0.025 < google_mean < 0.045
    assert 0.180 < bing_mean < 0.320
    assert 5 < bing_mean / google_mean < 11


def test_static_sizes_set_the_window_counts(google, bing):
    """Figure 5's thresholds come from how many congestion windows the
    static portion spans (k=1 google-like, k=2 bing-like)."""
    iw = google.edge_tcp.initial_cwnd_bytes
    google_static = google.page_profile.static_size
    bing_static = bing.page_profile.static_size
    # google: fits in IW plus at most one extra window.
    assert iw < google_static + 500 <= 2 * iw
    # bing: needs the second *and* third windows (3 + 6 segments < size).
    assert 2 * iw < bing_static <= 2 * iw + 2 * iw
    assert bing_static > google_static * 2


def test_fe_load_separation(google, bing):
    """Figure 7: shared-CDN FEs are slower, more variable, and more
    load-sensitive than dedicated ones."""
    assert bing.fe_load.median_delay > 2 * google.fe_load.median_delay
    assert bing.fe_load.sigma > google.fe_load.sigma
    assert bing.fe_load.per_concurrent_delay > \
        google.fe_load.per_concurrent_delay


def test_processing_noise_ordering(google, bing):
    """Bing's Tproc variance exceeds google's (Figures 3, 7, 8)."""
    assert bing.processing.sigma > google.processing.sigma


def test_internal_network_quality(google, bing):
    """The dedicated backbone is cleaner than the public-Internet path."""
    assert google.route_inflation <= bing.route_inflation
    assert google.fe_be_loss <= bing.fe_be_loss
    assert google.fe_be_jitter <= bing.fe_be_jitter
    assert google.fe_be_bandwidth >= bing.fe_be_bandwidth


def test_backend_connections_pinned_for_both(google, bing):
    """Both FE-BE legs ride warm, pinned-window connections, giving the
    similar Figure-9 slopes (C ~ 3 for ~33 kB responses)."""
    for profile in (google, bing):
        assert profile.backend_window_bytes is not None
        assert profile.backend_tcp.fixed_window_bytes is not None
        windows = (profile.page_profile.dynamic_base_size
                   / profile.backend_window_bytes)
        assert 2.0 <= windows <= 4.0


def test_deployment_density(google, bing):
    """Figure 6: the CDN must field several times more FE sites."""
    akamai = sites.akamai_like_fe_sites()
    google_sites = sites.google_like_fe_sites()
    assert len(akamai) >= 2 * len(google_sites)


def test_fig9_backends_exist():
    """The Figure-9 target back-ends must stay in the site catalogues."""
    assert any("boydton" in name for name, _ in sites.BING_LIKE_BE_SITES)
    assert any("lenoir" in name
               for name, _ in sites.GOOGLE_LIKE_BE_SITES)
