"""End-to-end inference pipeline tests: the paper's framework validated
against simulator ground truth."""

import pytest

from repro.analysis.boundary import BoundaryCalibration
from repro.analysis.clustering import classify_session, handshake_rtt
from repro.content.keywords import Keyword, KeywordCatalog
from repro.core.bounds import check_bounds, estimate_tfetch
from repro.core.metrics import (
    MetricsError,
    extract_all_calibrated,
    extract_metrics,
)
from repro.core.model import AbstractModel
from repro.measure.emulator import QueryEmulator
from repro.sim import units
from repro.testbed.scenario import Scenario, ScenarioConfig


def kw(text, popularity=0.5, complexity=0.5):
    return Keyword(text=text, popularity=popularity, complexity=complexity)


@pytest.fixture(scope="module")
def pipeline():
    """A small campaign with payloads captured, shared by the tests."""
    scenario = Scenario(ScenarioConfig(seed=11, vantage_count=6))
    sessions = []
    for vp in scenario.vantage_points:
        emulator = QueryEmulator(scenario, vp, store_payload=True)
        for i, text in enumerate(("calibration alpha", "calibration beta",
                                  "calibration gamma")):
            sessions.append(emulator.submit_default(
                Scenario.GOOGLE, kw(text)))
    scenario.sim.run()
    assert all(s.complete for s in sessions)
    calibration = BoundaryCalibration.from_sessions(sessions)
    return scenario, sessions, calibration


def test_boundary_matches_ground_truth_static_size(pipeline):
    scenario, sessions, calibration = pipeline
    service = scenario.service(Scenario.GOOGLE)
    static_len = len(service.pages.static_content())
    # Body-level static size must match the generator's static portion
    # exactly: the dynamic part begins right after it.
    assert calibration.static_size == static_len
    # Every calibrated FE's stream boundary = head + framing + static.
    for fe_name, boundary in calibration.boundaries.items():
        assert 0 < boundary.static_end - static_len < 300, fe_name
        assert boundary.static_end <= boundary.dynamic_start


def test_extracted_timeline_is_ordered(pipeline):
    scenario, sessions, calibration = pipeline
    metrics = extract_all_calibrated(sessions, calibration)
    assert len(metrics) == len(sessions)
    for m in metrics:
        t = m.timeline
        assert t.tb <= t.t1 <= t.t2 <= t.t3 <= t.t4 <= t.t5 <= t.te
        assert m.tstatic >= 0
        assert m.tdynamic >= m.tdelta
        assert m.overall_delay >= m.tdynamic


def test_rtt_measurement_matches_path(pipeline):
    scenario, sessions, calibration = pipeline
    metrics = extract_all_calibrated(sessions, calibration)
    for m in metrics:
        assert m.rtt == pytest.approx(m.session.path_rtt, rel=0.15)


def test_fetch_bounds_hold_against_ground_truth(pipeline):
    """The paper's Eq. 1, checked sample by sample against the true
    FE-BE fetch times recorded inside the simulated front-ends."""
    scenario, sessions, calibration = pipeline
    metrics = extract_all_calibrated(sessions, calibration)
    fetch_log = scenario.service(Scenario.GOOGLE).merged_fetch_log()
    report = check_bounds(metrics, fetch_log)
    assert report.n == len(metrics)
    assert report.both_fraction == 1.0
    assert report.mean_gap > 0


def test_tfetch_point_estimate_between_bounds(pipeline):
    scenario, sessions, calibration = pipeline
    metrics = extract_all_calibrated(sessions, calibration)
    for m in metrics:
        estimate = estimate_tfetch(m, weight=0.5)
        assert m.tdelta <= estimate <= m.tdynamic
    with pytest.raises(ValueError):
        estimate_tfetch(metrics[0], weight=1.5)


def test_clustering_identifies_bursts(pipeline):
    scenario, sessions, calibration = pipeline
    session = sessions[0]
    clusters = classify_session(session)
    assert clusters.handshake.has_handshake
    assert len(clusters.bursts) >= 1
    total_payload = sum(b.payload_bytes for b in clusters.bursts)
    assert total_payload >= session.response_size
    assert handshake_rtt(session) > 0


def test_metrics_error_on_bad_boundary(pipeline):
    scenario, sessions, calibration = pipeline
    with pytest.raises(MetricsError):
        extract_metrics(sessions[0], 0)
    with pytest.raises(MetricsError):
        extract_metrics(sessions[0], 10**9)


def test_abstract_model_predictions():
    model = AbstractModel(fe_delay=0.010, tfetch=0.200, static_windows=2)
    # Below the threshold: Tdynamic constant, Tdelta decreasing.
    assert model.predict_tdynamic(0.010) == pytest.approx(0.200)
    assert model.predict_tdelta(0.010) == pytest.approx(0.170)
    assert model.predict_tdelta(0.050) == pytest.approx(0.090)
    threshold = model.rtt_threshold()
    assert threshold == pytest.approx(0.095)
    # Above the threshold: Tdelta zero, Tdynamic linear in RTT.
    assert model.predict_tdelta(0.150) == 0.0
    assert model.predict_tdynamic(0.150) == pytest.approx(0.310)
    assert AbstractModel.bounds_hold(0.1, 0.15, 0.2)
    assert not AbstractModel.bounds_hold(0.2, 0.15, 0.1)
    assert AbstractModel.fetch_decomposition(0.2, 0.02, 3) == \
        pytest.approx(0.26)


def test_abstract_model_validation():
    with pytest.raises(ValueError):
        AbstractModel(fe_delay=-1, tfetch=0.1)
    with pytest.raises(ValueError):
        AbstractModel(fe_delay=0.01, tfetch=0.1, static_windows=-1)
    with pytest.raises(ValueError):
        AbstractModel.fetch_decomposition(-0.1, 0.01, 1)


def test_simulation_agrees_with_abstract_model(pipeline):
    """Quantitative check: measured Tdynamic within the model envelope."""
    scenario, sessions, calibration = pipeline
    metrics = extract_all_calibrated(sessions, calibration)
    fetch_log = scenario.service(Scenario.GOOGLE).merged_fetch_log()
    for m in metrics:
        record = fetch_log[m.session.query_id]
        model = AbstractModel(fe_delay=0.0, tfetch=record.tfetch,
                              static_windows=0)
        # Tdynamic can never undercut the true fetch time.
        assert m.tdynamic >= model.predict_tdynamic(0.0) - units.ms(1)
