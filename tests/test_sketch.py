"""Tests for the mergeable online quantile sketch (analysis.sketch)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.sketch import QuantileSketch, merge_sketches

values = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                   allow_infinity=False)
value_lists = st.lists(values, min_size=1, max_size=60)


def _filled(samples, subbuckets=128):
    sketch = QuantileSketch(subbuckets=subbuckets)
    for sample in samples:
        sketch.observe(sample)
    return sketch


# ---------------------------------------------------------------------------
# basics
# ---------------------------------------------------------------------------
def test_empty_sketch():
    sketch = QuantileSketch()
    assert sketch.count == 0
    assert sketch.quantile(0.5) is None
    assert sketch.mean is None


def test_rejects_bad_values():
    sketch = QuantileSketch()
    for bad in (-1.0, float("inf"), float("nan")):
        with pytest.raises(ValueError):
            sketch.observe(bad)


def test_extremes_are_exact():
    sketch = _filled([0.25, 3.0, 7.5, 0.125])
    assert sketch.quantile(0.0) == 0.125
    assert sketch.quantile(1.0) == 7.5


def test_zero_values_have_their_own_bucket():
    sketch = _filled([0.0, 0.0, 5.0])
    assert sketch.quantile(0.0) == 0.0
    assert sketch.quantile(0.5) == 0.0
    assert sketch.count == 3


def test_mean_is_exact():
    samples = [0.1, 0.2, 0.3, 0.4]
    assert _filled(samples).mean == pytest.approx(sum(samples) / 4)


def test_state_round_trip_and_fingerprint():
    sketch = _filled([0.5, 1.5, 2.5, 0.5])
    clone = QuantileSketch.from_state(sketch.state())
    assert clone == sketch
    assert clone.fingerprint() == sketch.fingerprint()
    clone.observe(9.0)
    assert clone.fingerprint() != sketch.fingerprint()


def test_merge_requires_matching_resolution():
    with pytest.raises(ValueError):
        QuantileSketch(subbuckets=64).merge(QuantileSketch(subbuckets=128))


# ---------------------------------------------------------------------------
# property tests: merge algebra and the rank-error bound
# ---------------------------------------------------------------------------
@given(a=value_lists, b=value_lists)
@settings(max_examples=60, deadline=None)
def test_merge_commutes(a, b):
    ab = _filled(a) + _filled(b)
    ba = _filled(b) + _filled(a)
    assert ab == ba
    assert ab.fingerprint() == ba.fingerprint()


@given(a=value_lists, b=value_lists, c=value_lists)
@settings(max_examples=60, deadline=None)
def test_merge_associates(a, b, c):
    left = (_filled(a) + _filled(b)) + _filled(c)
    right = _filled(a) + (_filled(b) + _filled(c))
    assert left == right
    assert left.fingerprint() == right.fingerprint()


@given(a=value_lists, b=value_lists)
@settings(max_examples=60, deadline=None)
def test_merge_equals_union(a, b):
    merged = _filled(a) + _filled(b)
    union = _filled(a + b)
    assert merged == union


@given(samples=value_lists,
       q=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=120, deadline=None)
def test_quantile_relative_error_bound(samples, q):
    sketch = _filled(samples)
    estimate = sketch.quantile(q)
    # Nearest-rank ground truth, matching the sketch's rank rule.
    exact = sorted(samples)[int(q * (len(samples) - 1))]
    if exact == 0.0:
        assert estimate == 0.0
        return
    # The estimate is the midpoint of the log-bucket holding a value of
    # the same rank; buckets are rank-exact, so only the within-bucket
    # midpoint error (bounded by the relative resolution) remains.
    assert estimate > 0.0
    assert abs(estimate - exact) / exact <= sketch.relative_error + 1e-12


@given(samples=st.lists(values, min_size=2, max_size=40))
@settings(max_examples=60, deadline=None)
def test_quantiles_monotone_in_q(samples):
    sketch = _filled(samples)
    quantiles = [sketch.quantile(q)
                 for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)]
    assert quantiles == sorted(quantiles)


@given(shards=st.lists(value_lists, min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_merge_sketches_order_independent(shards):
    forward = merge_sketches([_filled(shard) for shard in shards])
    backward = merge_sketches([_filled(shard)
                               for shard in reversed(shards)])
    assert forward == backward
    flat = _filled([sample for shard in shards for sample in shard])
    assert forward == flat


def test_bucket_midpoint_spans_all_magnitudes():
    # Tiny through huge magnitudes must land in a bucket whose midpoint
    # stays within the advertised relative error.
    for exponent in range(-300, 300, 37):
        value = math.ldexp(1.3, exponent)
        single = QuantileSketch()
        single.observe(value)
        mid = single.quantile(0.5)
        assert abs(mid - value) / value <= single.relative_error
