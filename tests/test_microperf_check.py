"""Tests for the microperf trajectory checker (benchmarks/run_microperf)."""

import importlib.util
import os

import pytest

_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks", "run_microperf.py")


@pytest.fixture()
def microperf(monkeypatch):
    spec = importlib.util.spec_from_file_location("run_microperf", _PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    def fake_trajectory():
        return {"benchmark": "fake", "unit": "ms", "runs": [
            {"label": "baseline", "git_sha": "unknown",
             "date": "unknown",
             "medians": {"test_bench_fast": 10.0,
                         "test_bench_slow": 100.0}}]}

    monkeypatch.setattr(module, "load_trajectory", fake_trajectory)
    return module


def test_check_passes_within_ratio(microperf, monkeypatch, capsys):
    monkeypatch.setattr(microperf, "run_benchmarks",
                        lambda: {"test_bench_fast": 12.0,
                                 "test_bench_slow": 150.0})
    assert microperf.main(["--check", "2.0", "--dry-run"]) == 0
    assert "passed" in capsys.readouterr().out


def test_check_failure_prints_full_ratio_table(microperf, monkeypatch,
                                               capsys):
    monkeypatch.setattr(microperf, "run_benchmarks",
                        lambda: {"test_bench_fast": 9.0,
                                 "test_bench_slow": 450.0,
                                 "test_bench_new": 5.0})
    assert microperf.main(["--check", "2.0", "--dry-run"]) == 1
    out = capsys.readouterr().out
    # The table names every benchmark with previous/current/ratio, not
    # just the offenders, and marks new entries and failures.
    assert "test_bench_slow" in out and "4.50x" in out
    assert "<-- FAIL" in out
    assert "test_bench_fast" in out and "0.90x" in out
    assert "test_bench_new" in out and "(new)" in out


def test_check_with_no_history_passes(microperf, monkeypatch, capsys):
    monkeypatch.setattr(microperf, "load_trajectory",
                        lambda: {"benchmark": "fake", "unit": "ms",
                                 "runs": []})
    monkeypatch.setattr(microperf, "run_benchmarks",
                        lambda: {"test_bench_fast": 9.0})
    assert microperf.main(["--check", "2.0", "--dry-run"]) == 0
    assert "nothing to regress" in capsys.readouterr().out
