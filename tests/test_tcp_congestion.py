"""Unit tests for congestion controllers."""

from repro.tcp.congestion import FixedWindowController, RenoController

MSS = 1000


def make_reno(iw_segments=3, ssthresh=1 << 30):
    return RenoController(MSS, iw_segments * MSS, ssthresh)


def test_slow_start_doubles_per_window():
    cc = make_reno(iw_segments=2)
    assert cc.in_slow_start
    # Each full-MSS ack adds one MSS in slow start -> exponential growth.
    cwnd0 = cc.cwnd
    cc.on_ack(MSS, cwnd0)
    cc.on_ack(MSS, cwnd0)
    assert cc.cwnd == cwnd0 + 2 * MSS


def test_congestion_avoidance_linear_growth():
    cc = RenoController(MSS, 10 * MSS, 10 * MSS)  # start at ssthresh
    assert not cc.in_slow_start
    start = cc.cwnd
    # One full window of acks -> +1 MSS.
    for _ in range(10):
        cc.on_ack(MSS, cc.cwnd)
    assert cc.cwnd == start + MSS


def test_fast_retransmit_halves_window():
    cc = make_reno(iw_segments=10)
    flight = 10 * MSS
    cc.on_fast_retransmit(flight)
    assert cc.ssthresh == flight // 2
    assert cc.cwnd == flight // 2 + 3 * MSS
    assert cc.in_recovery
    cc.on_dup_ack()
    assert cc.cwnd == flight // 2 + 4 * MSS
    cc.on_recovery_exit()
    assert not cc.in_recovery
    assert cc.cwnd == flight // 2


def test_partial_ack_during_recovery_deflates():
    cc = make_reno(iw_segments=10)
    cc.on_fast_retransmit(10 * MSS)
    before = cc.cwnd
    cc.on_ack(2 * MSS, 8 * MSS)
    assert cc.cwnd == before - 2 * MSS + MSS


def test_timeout_collapses_to_one_mss():
    cc = make_reno(iw_segments=10)
    cc.on_timeout(10 * MSS)
    assert cc.cwnd == MSS
    assert cc.ssthresh == 5 * MSS
    assert cc.in_slow_start


def test_timeout_ssthresh_floor():
    cc = make_reno(iw_segments=1)
    cc.on_timeout(MSS)
    assert cc.ssthresh == 2 * MSS


def test_ack_of_zero_bytes_is_noop():
    cc = make_reno()
    before = cc.cwnd
    cc.on_ack(0, 0)
    assert cc.cwnd == before


def test_snapshot_reports_state():
    cc = make_reno()
    snap = cc.snapshot()
    assert snap.cwnd == cc.cwnd
    assert snap.in_slow_start


def test_fixed_window_ignores_everything():
    cc = FixedWindowController(64 * 1024)
    cc.on_timeout(1000)
    cc.on_fast_retransmit(1000)
    cc.on_ack(100, 100)
    cc.on_dup_ack()
    cc.on_recovery_exit()
    assert cc.cwnd == 64 * 1024
    assert not cc.in_recovery
