"""Integration tests for finite FE caches in the measurement pipeline.

Three load-bearing properties:

* **ground truth** — with a finite static cache every query gets a
  unique id and a per-query hit/miss verdict in the FE's log;
* **invisibility of the default** — the degenerate infinite hierarchy
  changes nothing: replay-cache admission, campaign fingerprints, and
  streaming results are exactly what they were before the subsystem
  existed (the figure-level goldens are checked in CI);
* **sharding discipline** — Dataset-A/streaming sharding stays
  bit-identical to serial under a finite per-FE cache, while the
  configurations that cannot be serial-equivalent (Dataset B's shared
  FE, a shared regional tier) are rejected loudly, not silently wrong.

Plus the satellite: ``core.cache_detect`` against known hit rates.
"""

import dataclasses

import pytest

from repro.cache import CacheHierarchySpec, CacheSpec, CacheTier
from repro.content.keywords import Keyword
from repro.core.cache_detect import detect_result_caching
from repro.experiments import ExperimentScale, run_cache_lab
from repro.measure.driver import run_dataset_a, run_single_queries
from repro.measure.streaming import run_streaming_campaign
from repro.parallel import (
    run_dataset_a_sharded,
    run_dataset_b_sharded,
    run_streaming_sharded,
)
from repro.sim.replay.admission import path_bypass_reason
from repro.testbed.scenario import Scenario, ScenarioConfig
from repro.workload import OpenLoopWorkload, WorkloadSpec

FINITE = CacheHierarchySpec(
    static=CacheSpec("lru", capacity_bytes=3 * 4300))

#: Keyed service draws: required for sharding and replay admission.
DET_CONFIG = ScenarioConfig(seed=7, vantage_count=3,
                            keyed_service_draws=True,
                            deterministic_services=True)

KEYWORD = Keyword(text="alpha query", popularity=0.6, complexity=0.3)


def _keywords(count):
    return [Keyword(text="probe keyword %02d" % index,
                    popularity=0.5, complexity=0.4)
            for index in range(count)]


def session_fingerprint(session):
    """Every observable of one session, for exact comparison."""
    return (
        session.query_id, session.service, session.vp_name,
        session.fe_name, session.local_port, session.started_at,
        session.completed_at, session.failed, session.response_size,
        session.path_rtt,
        tuple((e.time, e.direction, e.src, e.dst, e.sport, e.dport,
               e.wire_size, e.payload_len, e.seq, e.ack, e.syn, e.fin,
               e.ack_flag, e.retransmit)
              for e in session.events),
    )


# ---------------------------------------------------------------------------
# ground-truth hit/miss logging
# ---------------------------------------------------------------------------
def test_repeated_vp_gets_unique_query_ids():
    scenario = Scenario(ScenarioConfig(seed=5, vantage_count=2))
    service = scenario.service(Scenario.GOOGLE)
    frontend = service.frontends[0]
    vp = scenario.vantage_points[0]
    sessions = run_single_queries(
        scenario, Scenario.GOOGLE, frontend,
        [(vp, kw) for kw in _keywords(5)], spacing=0.5)
    assert len(sessions) == 5
    assert len({s.query_id for s in sessions}) == 5


def test_finite_cache_logs_miss_then_hits():
    scenario = Scenario(ScenarioConfig(seed=5, vantage_count=2,
                                       fe_cache=FINITE))
    service = scenario.service(Scenario.GOOGLE)
    frontend = service.frontends[0]
    assert frontend.static_cache.finite
    vp = scenario.vantage_points[0]
    keyword = _keywords(1)[0]
    sessions = run_single_queries(
        scenario, Scenario.GOOGLE, frontend,
        [(vp, keyword)] * 4, spacing=2.0)
    levels = [frontend.static_hit_log[s.query_id] for s in sessions]
    # Cold cache: first request goes to origin, repeats hit the FE.
    assert levels == [CacheTier.ORIGIN, 0, 0, 0]
    assert frontend.static_cache.origin_fetches == 1
    stats = frontend.static_cache.stats()
    assert stats["fe"]["hits"] == 3 and stats["fe"]["misses"] == 1


def test_default_infinite_cache_logs_nothing():
    scenario = Scenario(ScenarioConfig(seed=5, vantage_count=2))
    frontend = scenario.service(Scenario.GOOGLE).frontends[0]
    vp = scenario.vantage_points[0]
    run_single_queries(scenario, Scenario.GOOGLE, frontend,
                       [(vp, KEYWORD)] * 2, spacing=2.0)
    assert frontend.static_hit_log == {}
    assert not frontend.static_cache.finite


# ---------------------------------------------------------------------------
# replay-cache admission
# ---------------------------------------------------------------------------
def test_default_cache_still_admits_replay():
    scenario = Scenario(DET_CONFIG)
    frontend = scenario.service(Scenario.GOOGLE).frontends[0]
    vp = scenario.vantage_points[0]
    scenario.link_client_to_frontend(
        vp, frontend, scenario.service(Scenario.GOOGLE))
    assert path_bypass_reason(scenario, Scenario.GOOGLE, frontend,
                              vp.name) is None


@pytest.mark.parametrize("fe_cache", [
    FINITE,
    CacheHierarchySpec(result=CacheSpec("lru", capacity_bytes=4096)),
])
def test_finite_cache_bypasses_replay(fe_cache):
    scenario = Scenario(ScenarioConfig(seed=7, vantage_count=3,
                                       keyed_service_draws=True,
                                       deterministic_services=True,
                                       fe_cache=fe_cache))
    frontend = scenario.service(Scenario.GOOGLE).frontends[0]
    vp = scenario.vantage_points[0]
    scenario.link_client_to_frontend(
        vp, frontend, scenario.service(Scenario.GOOGLE))
    assert path_bypass_reason(scenario, Scenario.GOOGLE, frontend,
                              vp.name) == "finite-content-cache"


def test_replay_cache_on_equals_off_under_finite_cache():
    config = ScenarioConfig(seed=7, vantage_count=3,
                            keyed_service_draws=True,
                            deterministic_services=True,
                            fe_cache=FINITE)

    def run(replay_cache):
        scenario = Scenario(config)
        return run_dataset_a(scenario, [KEYWORD], repeats=4,
                             interval=3.0, services=[Scenario.GOOGLE],
                             replay_cache=replay_cache)

    on, off = run(True), run(False)
    assert on.replay.bypasses.get("finite-content-cache", 0) \
        == len(on.sessions) > 0
    assert ([session_fingerprint(s) for s in on.sessions]
            == [session_fingerprint(s) for s in off.sessions])


# ---------------------------------------------------------------------------
# sharding discipline
# ---------------------------------------------------------------------------
def test_dataset_a_sharded_bit_identical_with_finite_cache():
    config = ScenarioConfig(seed=3, vantage_count=8,
                            keyed_service_draws=True,
                            fe_cache=FINITE)
    serial = run_dataset_a(Scenario(config), _keywords(2),
                           repeats=2, interval=1.0,
                           services=[Scenario.GOOGLE])
    sharded = run_dataset_a_sharded(Scenario(config), _keywords(2),
                                    repeats=2, interval=1.0,
                                    services=[Scenario.GOOGLE],
                                    shards=3, processes=2)
    assert len(serial.sessions) == len(sharded.sessions) > 0
    for ours, theirs in zip(serial.sessions, sharded.sessions):
        assert session_fingerprint(ours) == session_fingerprint(theirs)


def test_dataset_b_sharded_rejects_finite_cache():
    config = ScenarioConfig(seed=3, vantage_count=4,
                            keyed_service_draws=True,
                            fe_cache=FINITE)
    scenario = Scenario(config)
    frontend = scenario.service(Scenario.GOOGLE).frontends[0]
    with pytest.raises(ValueError, match="finite"):
        run_dataset_b_sharded(scenario, Scenario.GOOGLE,
                              frontend.node.name, KEYWORD,
                              repeats=2, interval=8.0, shards=2)


def test_sharding_rejects_shared_regional():
    config = ScenarioConfig(
        seed=3, vantage_count=4, keyed_service_draws=True,
        fe_cache=CacheHierarchySpec(
            static=CacheSpec("lru", capacity_bytes=4300),
            regional=CacheSpec("lru", capacity_bytes=43000),
            regional_scope="shared"))
    with pytest.raises(ValueError, match="shared regional"):
        run_dataset_a_sharded(Scenario(config), _keywords(1),
                              repeats=1, interval=1.0, shards=2)


# ---------------------------------------------------------------------------
# streaming campaigns
# ---------------------------------------------------------------------------
STREAM_SPEC = WorkloadSpec(seed=5, users=120, duration=200.0,
                           session_rate=0.5, keyword_count=32,
                           services=("google-like",))


def _stream(config):
    scenario = Scenario(config)
    workload = OpenLoopWorkload(
        STREAM_SPEC, [vp.name for vp in scenario.vantage_points])
    return run_streaming_campaign(scenario, workload)


def test_streaming_reports_cache_section_only_when_finite():
    config = ScenarioConfig(seed=5, vantage_count=6,
                            keyed_service_draws=True,
                            deterministic_services=True)
    default = _stream(config)
    assert default.content_cache is None
    assert default.content_hit_rate() is None

    finite = _stream(dataclasses.replace(config, fe_cache=FINITE))
    assert finite.content_cache is not None
    assert finite.content_cache["fe_misses"] > 0
    hit_rate = finite.content_hit_rate()
    assert hit_rate is not None and 0.0 <= hit_rate <= 1.0
    # The cache section is part of the fingerprint when present.
    assert default.fingerprint() != finite.fingerprint()


def test_streaming_sharded_bit_identical_with_finite_cache():
    config = ScenarioConfig(seed=5, vantage_count=6,
                            keyed_service_draws=True,
                            deterministic_services=True,
                            fe_cache=FINITE)
    serial = _stream(config)
    scenario = Scenario(config)
    sharded = run_streaming_sharded(scenario, STREAM_SPEC,
                                    shards=3, processes=2)
    assert serial.fingerprint() == sharded.fingerprint()
    assert serial.content_cache == sharded.content_cache


# ---------------------------------------------------------------------------
# cache_detect vs known hit rates
# ---------------------------------------------------------------------------
def _tdynamic_mixture(hits, misses):
    """Synthetic Tdynamic samples: cache hits skip the BE processing
    step (~60% of the response time) but still pay the transfer."""
    hit_s = [0.080 + 0.0015 * i for i in range(hits)]
    miss_s = [0.200 + 0.0015 * i for i in range(misses)]
    return hit_s + miss_s


DISTINCT = _tdynamic_mixture(0, 24)  # distinct keywords never hit


def test_cache_detect_at_zero_hit_rate():
    detection = detect_result_caching(_tdynamic_mixture(0, 24), DISTINCT)
    assert not detection.caching_detected
    assert 0.9 <= detection.median_ratio <= 1.1


def test_cache_detect_at_full_hit_rate():
    detection = detect_result_caching(_tdynamic_mixture(24, 0), DISTINCT)
    assert detection.caching_detected
    assert detection.median_ratio < 0.5


def test_cache_detect_at_half_hit_rate_sits_on_the_fence():
    # With an even hit/miss split the same-keyword median lands halfway
    # between the two modes: the KS test sees the distribution shift,
    # but the conservative median-ratio threshold (0.6) declines to
    # call it caching.
    detection = detect_result_caching(_tdynamic_mixture(12, 12),
                                      DISTINCT)
    assert 0.6 <= detection.median_ratio <= 0.8
    assert not detection.caching_detected


def test_cache_detect_at_majority_hit_rate():
    # One sample past the midpoint the median collapses onto the hit
    # mode and detection locks in.
    detection = detect_result_caching(_tdynamic_mixture(13, 11),
                                      DISTINCT)
    assert detection.caching_detected
    assert detection.median_ratio < 0.55


# ---------------------------------------------------------------------------
# the cache-lab experiment end to end
# ---------------------------------------------------------------------------
def test_cache_lab_acceptance_properties():
    result = run_cache_lab(ExperimentScale.tiny(seed=1))
    assert result.points and result.validations
    # Ground-truth hit rates are reported at more than one capacity and
    # grow with capacity.
    by_capacity = sorted(result.points_by(policy="lru", alpha=0.9,
                                          tier_depth=1),
                         key=lambda p: p.capacity_objects)
    assert len(by_capacity) >= 2
    rates = [p.ground_truth_hit_rate for p in by_capacity]
    assert all(0.0 < rate < 1.0 for rate in rates)
    assert rates == sorted(rates)
    # Skew helps: the measured hit rate rises with Zipf alpha.
    assert result.hit_rate_monotone_in_alpha
    # The outside-view (Tdelta) classifier tracks the server-side log.
    for point in result.points_by(tier_depth=1):
        assert point.classifier_agrees, point
    # cache_detect's verdict matches the log ground truth everywhere.
    assert result.all_validations_correct
