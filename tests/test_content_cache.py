"""Unit tests for the finite content-cache subsystem (``repro.cache``).

Covers spec validation, each eviction policy's victim choice, admission
control, the determinism contract of the keyed draws, and the
FE -> regional -> origin tier walk with both fill policies.
"""

import pytest

from repro.cache import (
    CacheHierarchySpec,
    CacheSpec,
    CacheTier,
    ContentCache,
    ORIGIN,
    aggregate_stats,
)


# ---------------------------------------------------------------------------
# CacheSpec / CacheHierarchySpec validation
# ---------------------------------------------------------------------------
def test_spec_defaults_are_infinite():
    spec = CacheSpec()
    assert spec.policy == "infinite"
    assert not spec.finite
    hierarchy = CacheHierarchySpec()
    assert not hierarchy.finite
    assert not hierarchy.shared_regional
    assert hierarchy.tier_depth == 0  # degenerate always-hit black box


def test_spec_rejects_inconsistent_capacity():
    with pytest.raises(ValueError):
        CacheSpec("infinite", capacity_bytes=100)
    with pytest.raises(ValueError):
        CacheSpec("lru")  # finite policy needs a capacity
    with pytest.raises(ValueError):
        CacheSpec("lru", capacity_bytes=0)
    with pytest.raises(ValueError):
        CacheSpec("clock", capacity_bytes=100)  # unknown policy


def test_spec_rejects_bad_admission():
    with pytest.raises(ValueError):
        CacheSpec("lru", capacity_bytes=10, admission="coin")
    with pytest.raises(ValueError):
        CacheSpec("lru", capacity_bytes=10, admission="prob",
                  admit_probability=1.5)


def test_hierarchy_regional_requires_finite_static():
    with pytest.raises(ValueError):
        CacheHierarchySpec(regional=CacheSpec("lru", capacity_bytes=10))
    spec = CacheHierarchySpec(
        static=CacheSpec("lru", capacity_bytes=10),
        regional=CacheSpec("lru", capacity_bytes=40))
    assert spec.finite
    assert spec.tier_depth == 2


# ---------------------------------------------------------------------------
# Eviction policies
# ---------------------------------------------------------------------------
def _cache(policy, capacity, **kwargs):
    return ContentCache(CacheSpec(policy, capacity_bytes=capacity,
                                  **kwargs), name="t", seed=7)


def test_lru_evicts_least_recently_used():
    cache = _cache("lru", 3)
    for key in "abc":
        cache.insert(key, 1)
    assert cache.lookup("a")  # refresh a's recency; b is now LRU
    cache.insert("d", 1)
    assert "b" not in cache
    assert "a" in cache and "c" in cache and "d" in cache
    assert cache.evictions == 1


def test_fifo_evicts_oldest_insertion_despite_hits():
    cache = _cache("fifo", 3)
    for key in "abc":
        cache.insert(key, 1)
    cache.lookup("a")  # FIFO ignores recency
    cache.insert("d", 1)
    assert "a" not in cache
    assert "b" in cache


def test_lfu_evicts_least_frequent_with_insertion_tiebreak():
    cache = _cache("lfu", 3)
    for key in "abc":
        cache.insert(key, 1)
    cache.lookup("a")
    cache.lookup("a")
    cache.lookup("c")
    # frequencies: a=3, b=1, c=2 -> victim b
    cache.insert("d", 1)
    assert "b" not in cache
    # now a=3, c=2, d=1... and on a tie the older insertion loses
    cache.insert("e", 1)
    assert "d" not in cache


def test_random_eviction_is_deterministic_per_seed():
    def victims(seed):
        cache = ContentCache(CacheSpec("random", capacity_bytes=4),
                             name="t", seed=seed)
        out = []
        for index in range(12):
            before = set(cache._entries)
            cache.insert("k%d" % index, 1)
            out.append(tuple(sorted(before - set(cache._entries))))
        return out

    assert victims(3) == victims(3)  # pure function of (seed, name, n)


def test_oversize_object_rejected():
    cache = _cache("lru", 10)
    assert not cache.insert("big", 11)
    assert cache.rejections == 1
    assert len(cache) == 0


def test_resident_reinsert_refreshes_in_place():
    cache = _cache("lru", 10)
    cache.insert("a", 4, value="v1")
    assert cache.insert("a", 6, value="v2")
    assert cache.insertions == 1  # refresh, not a new insertion
    assert cache.used_bytes == 6
    cache.lookup("a")
    assert cache.get("a") == "v2"


def test_eviction_frees_enough_bytes_for_large_objects():
    cache = _cache("lru", 10)
    for key in "abcde":
        cache.insert(key, 2)
    cache.insert("f", 6)  # must displace three 2-byte entries
    assert cache.used_bytes <= 10
    assert "f" in cache
    assert cache.evictions == 3


def test_probabilistic_admission_extremes_and_determinism():
    never = ContentCache(CacheSpec("lru", capacity_bytes=100,
                                   admission="prob",
                                   admit_probability=0.0),
                         name="t", seed=1)
    always = ContentCache(CacheSpec("lru", capacity_bytes=100,
                                    admission="prob",
                                    admit_probability=1.0),
                          name="t", seed=1)
    for index in range(20):
        never.insert("k%d" % index, 1)
        always.insert("k%d" % index, 1)
    assert len(never) == 0 and never.rejections == 20
    assert len(always) == 20 and always.rejections == 0

    def admitted(seed):
        cache = ContentCache(CacheSpec("lru", capacity_bytes=100,
                                       admission="prob",
                                       admit_probability=0.5),
                             name="t", seed=seed)
        return [cache.insert("k%d" % i, 1) for i in range(40)]

    outcomes = admitted(9)
    assert outcomes == admitted(9)
    assert any(outcomes) and not all(outcomes)


def test_counters_hit_rate_and_stats():
    cache = _cache("lru", 4)
    assert cache.hit_rate() is None
    cache.insert("a", 1)
    assert cache.lookup("a")
    assert not cache.lookup("b")
    assert cache.hit_rate() == 0.5
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["entries"] == 1 and stats["used_bytes"] == 1
    cache.reset_stats()
    assert cache.lookups == 0
    assert "a" in cache  # residency survives a stats reset
    cache.clear()
    assert len(cache) == 0 and cache.used_bytes == 0


def test_infinite_cache_never_evicts():
    cache = ContentCache(CacheSpec(), name="t")
    for index in range(500):
        cache.insert("k%d" % index, 1000)
    assert len(cache) == 500
    assert cache.evictions == 0


# ---------------------------------------------------------------------------
# CacheTier
# ---------------------------------------------------------------------------
def test_degenerate_tier_always_hits_silently():
    tier = CacheTier(CacheHierarchySpec())
    assert not tier.finite
    assert tier.lookup("anything") == 0
    assert tier.origin_fetches == 0
    assert tier.fetch_delay(0) == 0.0


def test_single_tier_miss_fill_hit_cycle():
    spec = CacheHierarchySpec(static=CacheSpec("lru", capacity_bytes=10))
    tier = CacheTier(spec, name="fe0", seed=3)
    assert tier.lookup("page") == ORIGIN
    assert tier.origin_fetches == 1
    tier.fill_from_origin("page", 4)
    assert tier.lookup("page") == 0
    assert tier.stats()["fe"]["hits"] == 1


def test_two_tier_lce_fills_everywhere_and_promotes():
    spec = CacheHierarchySpec(
        static=CacheSpec("lru", capacity_bytes=4),
        regional=CacheSpec("lru", capacity_bytes=16))
    tier = CacheTier(spec, name="fe0", seed=3)
    tier.fill_from_origin("page", 4)  # lce: both tiers get a copy
    assert tier.levels[0].peek("page") and tier.levels[1].peek("page")
    # Push the copy out of the tiny FE tier, keep the regional one.
    tier.fill_from_origin("other", 4)
    assert not tier.levels[0].peek("page")
    assert tier.levels[1].peek("page")
    # A regional hit costs the regional delay and re-promotes to FE.
    assert tier.lookup("page") == 1
    assert tier.fetch_delay(1) == spec.regional_fetch_delay
    assert tier.levels[0].peek("page")


def test_two_tier_lcd_climbs_one_tier_per_request():
    spec = CacheHierarchySpec(
        static=CacheSpec("lru", capacity_bytes=16),
        regional=CacheSpec("lru", capacity_bytes=16),
        fill="lcd")
    tier = CacheTier(spec, name="fe0", seed=3)
    tier.fill_from_origin("page", 4)  # lcd: regional only
    assert not tier.levels[0].peek("page")
    assert tier.levels[1].peek("page")
    assert tier.lookup("page") == 1  # regional hit promotes to FE
    assert tier.levels[0].peek("page")
    assert tier.lookup("page") == 0


def test_aggregate_stats_dedups_shared_regional():
    regional = ContentCache(CacheSpec("lru", capacity_bytes=100),
                            name="shared", seed=1)
    spec = CacheHierarchySpec(
        static=CacheSpec("lru", capacity_bytes=10),
        regional=CacheSpec("lru", capacity_bytes=100))
    tiers = [CacheTier(spec, name="fe%d" % i, seed=1,
                       regional_cache=regional) for i in range(3)]
    for index, tier in enumerate(tiers):
        key = "page-%d" % index
        assert tier.lookup(key) == ORIGIN
        tier.fill_from_origin(key, 4)
    # The shared cache now serves another FE's fill at level 1.
    assert tiers[1].lookup("page-0") == 1
    totals = aggregate_stats(tiers)
    assert totals["origin_fetches"] == 3
    assert totals["fe_misses"] == 4  # 3 cold + tiers[1]'s page-0 miss
    # One shared regional cache, counted once, not three times.
    assert totals["regional_misses"] == 3
    assert totals["regional_hits"] == 1
    assert totals["regional_used_bytes"] == 12


def test_aggregate_stats_none_for_all_infinite():
    tiers = [CacheTier(CacheHierarchySpec()) for _ in range(3)]
    assert aggregate_stats(tiers) is None
