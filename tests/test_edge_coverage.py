"""Edge-case coverage: engine, processes, HTTP responder misuse,
TCP host guards, topology asymmetry, emulator memory management."""

import pytest

from repro.http.message import HttpError, HttpRequest, HttpResponse
from repro.http.server import HttpServer, Responder
from repro.net.address import Endpoint
from repro.net.topology import LinkSpec, Topology
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.process import ProcessFailure, Sleep, spawn

from .conftest import TwoHostWorld, make_world
from .helpers import CollectorApp, RespondApp, SinkApp


# ---------------------------------------------------------------------------
# engine / process edges
# ---------------------------------------------------------------------------
def test_run_until_idle_respects_hard_limit():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 100:
            sim.schedule(1.0, chain)

    sim.schedule(0.0, chain)
    sim.run_until_idle(idle_gap=5.0, hard_limit=10.0)
    assert sim.now <= 11.0
    assert len(fired) <= 12


def test_run_until_idle_validates_gap():
    with pytest.raises(ValueError):
        Simulator().run_until_idle(idle_gap=0, hard_limit=10)


def test_event_handle_ordering():
    sim = Simulator()
    early = sim.schedule(1.0, lambda: None)
    late = sim.schedule(2.0, lambda: None)
    assert early < late


def test_nested_process_failure_propagates():
    sim = Simulator()

    def child():
        yield Sleep(0.5)
        raise KeyError("inner")

    def parent():
        yield child()

    spawn(sim, parent())
    with pytest.raises(ProcessFailure):
        sim.run()


def test_sleep_negative_rejected():
    sim = Simulator()

    def body():
        yield Sleep(-1.0)

    spawn(sim, body())
    with pytest.raises(ValueError):
        sim.run()


# ---------------------------------------------------------------------------
# HTTP responder misuse
# ---------------------------------------------------------------------------
class MisuseProbe:
    """Capture the responder from a handler for out-of-band misuse."""

    def __init__(self):
        self.responder = None

    def handler(self, request, responder):
        self.responder = responder
        responder.send_head(200)
        responder.send_body(b"part")
        # deliberately do not finish; tests poke at the responder


def test_responder_misuse_errors(two_hosts):
    world = two_hosts
    probe = MisuseProbe()
    HttpServer(world.server, 80, probe.handler)
    from repro.http.client import HttpFetch
    HttpFetch(world.client, Endpoint("server", 80),
              HttpRequest(path="/x"))
    world.run(until=5.0)
    responder = probe.responder
    assert responder is not None
    with pytest.raises(HttpError):
        responder.send_head(200)     # head already sent
    responder.finish()
    with pytest.raises(HttpError):
        responder.send_body(b"more")  # after finish
    responder.finish()                # idempotent


def test_responder_requires_head_first(two_hosts):
    world = two_hosts
    errors = []

    def handler(request, responder):
        try:
            responder.send_body(b"x")
        except HttpError as exc:
            errors.append("body")
        try:
            responder.finish()
        except HttpError:
            errors.append("finish")
        responder.respond(HttpResponse(body=b"ok"))

    HttpServer(world.server, 80, handler)
    from repro.http.client import HttpFetch
    fetch = HttpFetch(world.client, Endpoint("server", 80),
                      HttpRequest(path="/"))
    world.run()
    assert errors == ["body", "finish"]
    assert fetch.response.body == b"ok"


def test_server_aborts_on_malformed_request(two_hosts):
    world = two_hosts
    server = HttpServer(world.server, 80, lambda rq, rs: rs.respond(
        HttpResponse(body=b"never")))

    class RawGarbage(CollectorApp):
        def on_established(self, conn):
            conn.send(b"NONSENSE\r\n\r\n")

    app = RawGarbage()
    world.client.connect(Endpoint("server", 80), app)
    world.run(until=10.0)
    assert server.protocol_errors == 1
    assert server.requests_served == 0


# ---------------------------------------------------------------------------
# TCP host guards
# ---------------------------------------------------------------------------
def test_duplicate_listen_rejected(two_hosts):
    world = two_hosts
    world.server.listen(80, SinkApp)
    with pytest.raises(ValueError):
        world.server.listen(80, SinkApp)


def test_isn_is_deterministic_per_flow(two_hosts):
    world = two_hosts
    from repro.net.address import FlowKey
    flow = FlowKey(Endpoint("client", 50000), Endpoint("server", 80))
    assert world.client.next_isn(flow) == world.client.next_isn(flow)
    other = FlowKey(Endpoint("client", 50001), Endpoint("server", 80))
    assert world.client.next_isn(flow) != world.client.next_isn(other)


def test_explicit_local_port_conflict(two_hosts):
    world = two_hosts
    world.server.listen(80, SinkApp)
    world.client.connect(Endpoint("server", 80), CollectorApp(),
                         local_port=55555)
    with pytest.raises(ValueError):
        world.client.connect(Endpoint("server", 80), CollectorApp(),
                             local_port=55555)


# ---------------------------------------------------------------------------
# topology asymmetry
# ---------------------------------------------------------------------------
def test_connect_asymmetric_links():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_node("a")
    topo.add_node("b")
    forward, backward = topo.connect_asymmetric(
        "a", "b",
        LinkSpec(delay=0.010, bandwidth=units.mbps(100)),
        LinkSpec(delay=0.050, bandwidth=units.mbps(1)))
    assert forward.delay == 0.010
    assert backward.delay == 0.050
    assert backward.bandwidth < forward.bandwidth
    topo.build_routes()
    assert topo.path_delay("a", "b") == pytest.approx(0.010)
    assert topo.path_delay("b", "a") == pytest.approx(0.050)
    assert topo.rtt("a", "b") == pytest.approx(0.060)


# ---------------------------------------------------------------------------
# emulator memory management
# ---------------------------------------------------------------------------
def test_emulator_drop_capture_before():
    from repro.content.keywords import Keyword
    from repro.measure.emulator import QueryEmulator
    from repro.testbed.scenario import Scenario, ScenarioConfig

    scenario = Scenario(ScenarioConfig(seed=30, vantage_count=4))
    emulator = QueryEmulator(scenario, scenario.vantage_points[0])
    keyword = Keyword(text="gc probe", popularity=0.5, complexity=0.5)
    session = emulator.submit_default(Scenario.GOOGLE, keyword)
    scenario.sim.run()
    assert session.complete
    before = len(emulator.capture.events)
    assert before > 0
    emulator.drop_capture_before(scenario.sim.now + 1.0)
    assert len(emulator.capture.events) == 0
    # The already-harvested session keeps its events.
    assert len(session.events) > 0
    assert before >= len(session.events)
