"""Unit tests for TCP send/receive buffers."""

import pytest

from repro.tcp.buffers import Reassembler, SendBuffer


# ---------------------------------------------------------------------------
# SendBuffer
# ---------------------------------------------------------------------------
def test_send_buffer_enqueue_and_peek():
    buf = SendBuffer()
    buf.enqueue(b"hello ")
    buf.enqueue(b"world")
    assert buf.stream_length == 11
    assert buf.peek(0, 5) == b"hello"
    assert buf.peek(6, 5) == b"world"
    assert buf.peek(3, 6) == b"lo wor"
    assert buf.peek(11, 10) == b""


def test_send_buffer_tracking():
    buf = SendBuffer()
    buf.enqueue(b"x" * 100)
    assert buf.unsent_bytes == 100
    buf.advance_nxt(60)
    assert buf.unsent_bytes == 40
    assert buf.unacked_bytes == 60
    assert buf.ack_to(30) == 30
    assert buf.unacked_bytes == 30
    assert buf.ack_to(30) == 0  # duplicate ack
    assert not buf.all_acked
    buf.advance_nxt(40)
    assert buf.ack_to(100) == 70
    assert buf.all_acked


def test_send_buffer_releases_acked_memory():
    buf = SendBuffer()
    for _ in range(10):
        buf.enqueue(b"a" * 1000)
    buf.advance_nxt(10000)
    buf.ack_to(5000)
    with pytest.raises(ValueError):
        buf.peek(0, 10)  # released
    assert buf.peek(5000, 4) == b"aaaa"


def test_send_buffer_invalid_operations():
    buf = SendBuffer()
    buf.enqueue(b"abc")
    with pytest.raises(ValueError):
        buf.advance_nxt(4)
    buf.advance_nxt(3)
    with pytest.raises(ValueError):
        buf.ack_to(5)
    buf.mark_fin()
    with pytest.raises(RuntimeError):
        buf.enqueue(b"more")


def test_send_buffer_empty_enqueue_is_noop():
    buf = SendBuffer()
    buf.enqueue(b"")
    assert buf.stream_length == 0


# ---------------------------------------------------------------------------
# Reassembler
# ---------------------------------------------------------------------------
def test_reassembler_in_order():
    r = Reassembler()
    assert r.offer(0, b"abc") == b"abc"
    assert r.offer(3, b"def") == b"def"
    assert r.next_expected == 6


def test_reassembler_out_of_order():
    r = Reassembler()
    assert r.offer(3, b"def") == b""
    assert r.buffered_bytes == 3
    assert r.offer(0, b"abc") == b"abcdef"
    assert r.buffered_bytes == 0


def test_reassembler_duplicate_ignored():
    r = Reassembler()
    r.offer(0, b"abc")
    assert r.offer(0, b"abc") == b""
    assert r.next_expected == 3


def test_reassembler_overlapping_segments():
    r = Reassembler()
    assert r.offer(2, b"cdef") == b""
    assert r.offer(0, b"abcd") == b"abcdef"


def test_reassembler_partial_stale_prefix():
    r = Reassembler()
    r.offer(0, b"abcd")
    # Retransmission covering old + new data.
    assert r.offer(2, b"cdEF") == b"EF"
    assert r.next_expected == 6


def test_reassembler_gaps_reported():
    r = Reassembler()
    r.offer(5, b"xx")
    r.offer(10, b"yy")
    assert r.gaps() == [(0, 5), (7, 10)]
    r.offer(0, b"aaaaa")
    assert r.gaps() == [(7, 10)]


def test_reassembler_window_accounting():
    r = Reassembler(window_bytes=100)
    r.offer(10, b"z" * 30)
    assert r.available_window == 70
    r.offer(0, b"z" * 10)
    assert r.available_window == 100


def test_reassembler_empty_offer():
    r = Reassembler()
    assert r.offer(0, b"") == b""
    assert r.next_expected == 0
