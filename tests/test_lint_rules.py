"""Rule-pack tests driven by the fixtures under tests/data/lint/.

Each fixture annotates violating lines with ``# expect: RULE`` markers;
the test asserts the analyzer reports exactly those (rule, line) pairs —
missed findings and spurious findings both fail.
"""

import os
import re

import pytest

from repro.lint import LintConfig, LintRunner

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "data", "lint")

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9,\s]+)")


def expected_findings(path):
    """Sorted (line, rule) pairs declared by ``# expect:`` markers."""
    expected = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, text in enumerate(handle, start=1):
            match = _EXPECT_RE.search(text)
            if match:
                for rule_id in match.group(1).split(","):
                    expected.append((lineno, rule_id.strip()))
    return sorted(expected)


def lint_fixture(name, **config_kwargs):
    runner = LintRunner(LintConfig(**config_kwargs))
    findings = runner.run_file(os.path.join(FIXTURES, name))
    # Project-scope rules (EVT001, the flow packs) run after the
    # per-file pass; for a one-file fixture the "project" is the file.
    findings.extend(runner.run_project())
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


@pytest.mark.parametrize("fixture", [
    "determinism_bad.py",
    "unit_bad.py",
    "event_bad.py",
    "obs_exporter_bad.py",
])
def test_fixture_findings_match_expect_markers(fixture):
    findings = lint_fixture(fixture)
    assert not any(f.suppressed for f in findings)
    actual = sorted((f.line, f.rule) for f in findings)
    assert actual == expected_findings(os.path.join(FIXTURES, fixture))


def test_determinism_pack_covers_at_least_three_rules():
    rules = {f.rule for f in lint_fixture("determinism_bad.py")}
    assert {"DET001", "DET002", "DET003", "DET004", "DET005"} <= rules


def test_unit_pack_covers_at_least_three_rules():
    rules = {f.rule for f in lint_fixture("unit_bad.py")}
    assert {"UNIT001", "UNIT002", "UNIT003", "UNIT004"} <= rules


def test_event_pack_covers_at_least_two_rules():
    rules = {f.rule for f in lint_fixture("event_bad.py")}
    assert {"EVT001", "EVT002", "EVT003"} <= rules


def test_inline_suppressions_silence_every_finding():
    findings = lint_fixture("suppressed_ok.py")
    assert findings, "fixture should still *produce* findings"
    assert all(f.suppressed for f in findings)
    assert {f.rule for f in findings} >= {"DET001", "DET003", "UNIT002",
                                          "EVT002", "UNIT001"}


def test_file_level_pragma_silences_whole_module():
    findings = lint_fixture("pragma_file.py")
    det = [f for f in findings if f.rule == "DET001"]
    assert len(det) == 2
    assert all(f.suppressed for f in det)


def test_targeted_suppression_does_not_silence_other_rules():
    runner = LintRunner(LintConfig())
    findings = runner.run_source(
        "import time\n"
        "def t():\n"
        "    return time.time()  # simlint: ignore[UNIT002]\n",
        path="inline.py")
    det = [f for f in findings if f.rule == "DET001"]
    assert len(det) == 1 and not det[0].suppressed


def test_unknown_rule_in_suppression_is_reported():
    runner = LintRunner(LintConfig())
    findings = runner.run_source(
        "x = 1  # simlint: ignore[NOPE999]\n", path="inline.py")
    assert [f.rule for f in findings] == ["META001"]
    assert "NOPE999" in findings[0].message


def test_docstring_mentioning_syntax_is_not_a_suppression():
    runner = LintRunner(LintConfig())
    findings = runner.run_source(
        '"""Docs: write # simlint: ignore[DET001] on the line."""\n'
        "import time\n"
        "start = time.time()\n", path="inline.py")
    det = [f for f in findings if f.rule == "DET001"]
    assert len(det) == 1 and not det[0].suppressed


def test_syntax_error_becomes_meta_finding():
    runner = LintRunner(LintConfig())
    findings = runner.run_source("def broken(:\n", path="inline.py")
    assert [f.rule for f in findings] == ["META001"]
    assert "does not parse" in findings[0].message
