"""Unit tests for the discrete-event engine."""

# This module deliberately exercises the engine's sharp edges (negative
# delays, re-entrant run(), cancellation), which is exactly what the
# event-safety lints exist to flag elsewhere.
# simlint: ignore-file[EVT001, EVT002, EVT003]

import pytest

from repro.sim.engine import (SchedulingError, SimulationError, Simulator,
                              is_cancelled, is_pending)


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_zero_delay_event_from_callback_runs_same_time():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(0.0, lambda: fired.append(("inner", sim.now)))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == [("outer", 1.0), ("inner", 1.0)]


def test_schedule_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-0.1, lambda: None)


def test_call_at_in_past_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.call_at(1.0, lambda: None)


def test_non_callable_rejected():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.schedule(1.0, "not callable")


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, fired.append, "y")
    assert is_pending(handle)
    sim.cancel(handle)
    sim.run()
    assert fired == ["y"]
    assert is_cancelled(handle)


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    assert sim.cancel(handle) is True
    assert sim.cancel(handle) is False
    sim.run()
    assert sim.events_processed == 0


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.cancel(handle) is False
    assert not is_cancelled(handle)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0  # clock advanced to the horizon
    sim.run()
    assert fired == ["early", "late"]


def test_run_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_run_until_with_max_events_advances_clock():
    # Regression: the max_events early exit used to skip the final
    # clock-advance to `until` even when the window was fully drained.
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run(until=5.0, max_events=2)
    assert fired == ["a", "b"]
    assert sim.now == 5.0


def test_run_until_with_max_events_keeps_clock_on_pending_work():
    # The documented exception: an event still pending at or before
    # `until` pins the clock so the work is not skipped over.
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run(until=5.0, max_events=1)
    assert fired == ["a"]
    assert sim.now == 1.0
    sim.run(until=5.0)
    assert fired == ["a", "b"]
    assert sim.now == 5.0


def test_live_events_excludes_cancelled_entries():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(3)]
    assert sim.pending_events == 3
    assert sim.live_events == 3
    sim.cancel(handles[1])
    assert sim.pending_events == 3  # lazy deletion keeps the entry
    assert sim.live_events == 2
    sim.run()
    assert sim.live_events == 0
    assert sim.events_processed == 2


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_engine_not_reentrant():
    sim = Simulator()

    def recurse():
        sim.run()

    sim.schedule(1.0, recurse)
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_idle_stops_at_gap():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(1.5, fired.append, "b")
    sim.schedule(50.0, fired.append, "far")
    sim.run_until_idle(idle_gap=5.0, hard_limit=100.0)
    assert fired == ["a", "b"]


def test_run_until_idle_drains_cancelled_head():
    # A cancelled entry at the head must neither fire nor mask the gap
    # to the first *live* event behind it.
    sim = Simulator()
    fired = []
    doomed = sim.schedule(1.0, fired.append, "doomed")
    sim.schedule(6.0, fired.append, "far")
    sim.cancel(doomed)
    sim.run_until_idle(idle_gap=5.0, hard_limit=100.0)
    assert fired == []  # gap to 6.0 exceeds idle_gap once head drained
    assert sim.live_events == 1

    sim2 = Simulator()
    fired2 = []
    doomed2 = sim2.schedule(1.0, fired2.append, "doomed")
    sim2.schedule(2.0, fired2.append, "near")
    sim2.cancel(doomed2)
    sim2.run_until_idle(idle_gap=5.0, hard_limit=100.0)
    assert fired2 == ["near"]


def test_run_until_idle_gap_exactly_equal_continues():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(6.0, fired.append, "b")  # gap == idle_gap exactly
    sim.run_until_idle(idle_gap=5.0, hard_limit=100.0)
    assert fired == ["a", "b"]


def test_run_until_idle_hard_limit_mid_burst():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run_until_idle(idle_gap=5.0, hard_limit=3.5)
    assert fired == [0, 1, 2]  # the t=4.0 event is past the cap
    assert sim.now == 3.0


def test_start_time_respected():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0
    fired = []
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [101.0]
