"""Unit tests for the discrete-event engine."""

# This module deliberately exercises the engine's sharp edges (negative
# delays, re-entrant run(), cancellation), which is exactly what the
# event-safety lints exist to flag elsewhere.
# simlint: ignore-file[EVT001, EVT002, EVT003]

import pytest

from repro.sim.engine import SchedulingError, SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_zero_delay_event_from_callback_runs_same_time():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(0.0, lambda: fired.append(("inner", sim.now)))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == [("outer", 1.0), ("inner", 1.0)]


def test_schedule_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-0.1, lambda: None)


def test_call_at_in_past_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.call_at(1.0, lambda: None)


def test_non_callable_rejected():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.schedule(1.0, "not callable")


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, fired.append, "y")
    handle.cancel()
    sim.run()
    assert fired == ["y"]
    assert handle.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0  # clock advanced to the horizon
    sim.run()
    assert fired == ["early", "late"]


def test_run_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_engine_not_reentrant():
    sim = Simulator()

    def recurse():
        sim.run()

    sim.schedule(1.0, recurse)
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_idle_stops_at_gap():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(1.5, fired.append, "b")
    sim.schedule(50.0, fired.append, "far")
    sim.run_until_idle(idle_gap=5.0, hard_limit=100.0)
    assert fired == ["a", "b"]


def test_start_time_respected():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0
    fired = []
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [101.0]
