"""Tests for the analysis package: stats, streams, boundaries, clusters."""

import pytest

from repro.analysis import stats
from repro.analysis.boundary import (
    BoundaryError,
    common_prefix_length,
    detect_boundary,
)
from repro.analysis.stream import (
    TraceError,
    arrival_time_of_offset,
    inbound_byte_arrivals,
    peer_isn,
    reconstruct_inbound_stream,
    total_inbound_bytes,
)
from repro.measure.capture import PacketEvent


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------
def test_median_and_percentile():
    assert stats.median([3, 1, 2]) == 2
    assert stats.percentile([1, 2, 3, 4, 5], 50) == 3
    with pytest.raises(ValueError):
        stats.median([])


def test_moving_median_window():
    values = [10, 0, 10, 0, 10, 100]
    smoothed = stats.moving_median(values, window=3)
    assert len(smoothed) == len(values)
    assert smoothed[0] == 10
    assert smoothed[2] == 10  # median(10, 0, 10)
    assert smoothed[5] == 10  # median(0, 10, 100)
    with pytest.raises(ValueError):
        stats.moving_median(values, window=0)


def test_cdf_points_and_fraction_below():
    points = stats.cdf_points([3, 1, 2, 2])
    assert points[0] == (1, 0.25)
    assert points[-1] == (3, 1.0)
    assert stats.fraction_below([1, 2, 3, 4], 3) == 0.5
    assert stats.cdf_points([]) == []


def test_box_stats_quartiles():
    box = stats.box_stats(list(range(1, 101)))
    assert box.median == pytest.approx(50.5)
    assert box.q1 == pytest.approx(25.75)
    assert box.q3 == pytest.approx(75.25)
    assert box.low_whisker >= 1
    assert box.high_whisker <= 100
    assert box.iqr == pytest.approx(49.5)


def test_binned_medians():
    x = [5, 15, 16, 25]
    y = [1.0, 2.0, 4.0, 8.0]
    points = stats.binned_medians(x, y, bin_width=10)
    assert points == [(5.0, 1.0), (15.0, 3.0), (25.0, 8.0)]
    with pytest.raises(ValueError):
        stats.binned_medians([1], [1, 2], 10)


def test_linear_fit_recovers_line():
    x = list(range(20))
    y = [0.5 * xi + 3 for xi in x]
    fit = stats.linear_fit(x, y)
    assert fit.slope == pytest.approx(0.5)
    assert fit.intercept == pytest.approx(3.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(100) == pytest.approx(53.0)
    with pytest.raises(ValueError):
        stats.linear_fit([1, 1], [2, 3])


def test_summary_fields():
    info = stats.summary([1.0, 2.0, 3.0])
    assert info["mean"] == pytest.approx(2.0)
    assert info["median"] == 2.0
    assert info["n"] == 3
    assert info["min"] == 1.0 and info["max"] == 3.0


# ---------------------------------------------------------------------------
# stream reconstruction
# ---------------------------------------------------------------------------
def make_event(time, direction, seq=0, payload=b"", syn=False,
               ack_flag=False, ack=0, fin=False):
    return PacketEvent(time=time, direction=direction, src="s", dst="c",
                       sport=80, dport=5000, wire_size=40 + len(payload),
                       payload_len=len(payload), seq=seq, ack=ack,
                       syn=syn, fin=fin, ack_flag=ack_flag,
                       retransmit=False, payload=payload or None)


def handshake_events(isn=1000):
    return [
        make_event(0.00, "out", seq=1, syn=True),
        make_event(0.01, "in", seq=isn, syn=True, ack_flag=True, ack=2),
    ]


def test_peer_isn_extraction():
    events = handshake_events(isn=777)
    assert peer_isn(events) == 777
    with pytest.raises(TraceError):
        peer_isn([make_event(0, "out", syn=True)])


def test_byte_arrivals_in_order():
    isn = 100
    events = handshake_events(isn) + [
        make_event(0.05, "in", seq=isn + 1, payload=b"aaaa"),
        make_event(0.06, "in", seq=isn + 5, payload=b"bbbb"),
    ]
    arrivals = inbound_byte_arrivals(events)
    assert [(a.start, a.end) for a in arrivals] == [(0, 4), (4, 8)]
    assert total_inbound_bytes(arrivals) == 8


def test_byte_arrivals_ignore_retransmitted_overlap():
    isn = 100
    events = handshake_events(isn) + [
        make_event(0.05, "in", seq=isn + 1, payload=b"aaaa"),
        make_event(0.06, "in", seq=isn + 1, payload=b"aaaa"),  # dup
        make_event(0.07, "in", seq=isn + 3, payload=b"aabb"),  # overlap
    ]
    arrivals = inbound_byte_arrivals(events)
    assert [(a.start, a.end) for a in arrivals] == [(0, 4), (4, 6)]


def test_arrival_time_of_offset():
    isn = 0
    events = handshake_events(isn) + [
        make_event(0.05, "in", seq=isn + 1, payload=b"xxxx"),
        make_event(0.20, "in", seq=isn + 5, payload=b"yyyy"),
    ]
    arrivals = inbound_byte_arrivals(events)
    assert arrival_time_of_offset(arrivals, 0) == 0.05
    assert arrival_time_of_offset(arrivals, 3) == 0.05
    assert arrival_time_of_offset(arrivals, 4) == 0.20
    assert arrival_time_of_offset(arrivals, 99) is None


def test_reconstruct_stream_with_out_of_order():
    isn = 50
    events = handshake_events(isn) + [
        make_event(0.05, "in", seq=isn + 5, payload=b"world"),
        make_event(0.06, "in", seq=isn + 1, payload=b"hell"),
    ]
    assert reconstruct_inbound_stream(events) == b"hellworld"


def test_reconstruct_stream_detects_holes():
    isn = 50
    events = handshake_events(isn) + [
        make_event(0.05, "in", seq=isn + 10, payload=b"late"),
    ]
    with pytest.raises(TraceError):
        reconstruct_inbound_stream(events)


def test_reconstruct_requires_payloads():
    isn = 50
    event = PacketEvent(time=0.05, direction="in", src="s", dst="c",
                        sport=80, dport=5000, wire_size=44, payload_len=4,
                        seq=isn + 1, ack=0, syn=False, fin=False,
                        ack_flag=True, retransmit=False, payload=None)
    with pytest.raises(TraceError):
        reconstruct_inbound_stream(handshake_events(isn) + [event])


# ---------------------------------------------------------------------------
# boundary detection
# ---------------------------------------------------------------------------
def test_common_prefix_length():
    assert common_prefix_length([b"abcdef", b"abcxyz"]) == 3
    assert common_prefix_length([b"same", b"same"]) == 4
    assert common_prefix_length([b"", b"abc"]) == 0
    assert common_prefix_length([b"abc"]) == 3
    with pytest.raises(ValueError):
        common_prefix_length([])


class FakeKeyword:
    def __init__(self, text):
        self.text = text


class FakeSession:
    def __init__(self, stream, keyword, complete=True):
        isn = 10
        self.keyword = FakeKeyword(keyword)
        self.completed_at = 1.0 if complete else None
        self.failed = None if complete else "x"
        self.events = handshake_events(isn) + [
            make_event(0.1, "in", seq=isn + 1, payload=stream)]

    @property
    def complete(self):
        return self.completed_at is not None and self.failed is None


def test_detect_boundary_across_keywords():
    static = b"S" * 100
    s1 = FakeSession(static + b"dynamic-one", "one")
    s2 = FakeSession(static + b"dynamic-two", "two")
    estimate = detect_boundary([s1, s2])
    # Common prefix extends through "dynamic-" (shared) -> offset >= 100.
    assert estimate.stream_offset >= 100
    assert estimate.sessions_used == 2
    assert estimate.distinct_keywords == 2


def test_detect_boundary_needs_distinct_keywords():
    static = b"S" * 50
    s1 = FakeSession(static + b"same", "kw")
    s2 = FakeSession(static + b"same", "kw")
    with pytest.raises(BoundaryError):
        detect_boundary([s1, s2])


def test_detect_boundary_needs_two_complete_sessions():
    s1 = FakeSession(b"data", "kw", complete=True)
    s2 = FakeSession(b"data2", "kw2", complete=False)
    with pytest.raises(BoundaryError):
        detect_boundary([s1, s2])
